package biorank

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// liveSystem builds a demo system switched to live mode.
func liveSystem(t *testing.T, seed uint64) *System {
	t.Helper()
	s, err := NewDemoSystem(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableLive(); err != nil {
		t.Fatal(err)
	}
	return s
}

// scoreMap ranks a protein with a deterministic method and returns
// label→score.
func scoreMap(t *testing.T, s *System, protein string, m Method) map[string]float64 {
	t.Helper()
	ans, err := s.Query(protein)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := ans.Rank(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(ranked))
	for _, a := range ranked {
		out[a.Label] = a.Score
	}
	return out
}

// TestLiveQueryParity pins that carving a keyword's query graph out of
// the live union graph yields the same answers and (deterministic)
// scores as integrating that keyword's neighborhood from scratch.
func TestLiveQueryParity(t *testing.T) {
	live := liveSystem(t, 7)
	fresh, err := NewDemoSystem(7)
	if err != nil {
		t.Fatal(err)
	}
	if live.Live() == false || fresh.Live() {
		t.Fatal("live flags wrong")
	}
	proteins := fresh.Proteins()
	if len(proteins) < 3 {
		t.Fatalf("demo world has %d proteins", len(proteins))
	}
	for _, p := range proteins[:3] {
		for _, m := range []Method{InEdge, PathCount} {
			a := scoreMap(t, live, p, m)
			b := scoreMap(t, fresh, p, m)
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("%s/%s: live %d answers, fresh %d", p, m, len(a), len(b))
			}
			for label, sa := range a {
				if sb, ok := b[label]; !ok || sa != sb {
					t.Fatalf("%s/%s answer %s: live %v, fresh %v (present %v)", p, m, label, sa, sb, ok)
				}
			}
		}
	}
}

// setProteinP builds the delta revising one protein record's presence
// probability.
func setProteinP(accession string, p float64) IngestDelta {
	return IngestDelta{Source: "curation", Ops: []IngestOp{
		{Op: "set-node-p", Node: IngestRef{Kind: "EntrezProtein", Label: accession}, P: p},
	}}
}

// TestIngestScopedInvalidation pins the facade end of the tentpole: a
// delta on one protein's record invalidates exactly that protein's
// cached results, and every other protein keeps hitting.
func TestIngestScopedInvalidation(t *testing.T) {
	s := liveSystem(t, 3)
	defer s.Close()
	proteins := s.Proteins()
	pA, pB := proteins[0], proteins[1]
	accs := s.med.Accessions(pA)
	if len(accs) == 0 {
		t.Fatalf("no accession for %s", pA)
	}

	opts := Options{Trials: 200, Seed: 1}
	reqs := []BatchRequest{
		{Protein: pA, Methods: []Method{Reliability}, Options: opts},
		{Protein: pB, Methods: []Method{Reliability}, Options: opts},
	}
	for _, r := range s.QueryBatch(reqs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	res, err := s.Ingest(setProteinP(accs[0], 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ProbOnly || res.ProbChanges != 1 {
		t.Fatalf("ingest result %+v, want one probability change", res)
	}
	if len(res.AffectedSources) != 1 || res.AffectedSources[0] != pA {
		t.Fatalf("affected sources %v, want [%s]", res.AffectedSources, pA)
	}
	if res.Invalidated == 0 {
		t.Fatalf("ingest reclaimed no cache entries: %+v", res)
	}
	if res.Epochs["curation"] != 1 {
		t.Fatalf("epochs %v, want curation=1", res.Epochs)
	}

	out := s.QueryBatch(reqs)
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatal(out[0].Err, out[1].Err)
	}
	if out[0].Cached[Reliability] {
		t.Fatal("affected protein served a stale cache entry")
	}
	if !out[1].Cached[Reliability] {
		t.Fatal("unaffected protein missed the cache after a scoped invalidation")
	}

	ls, ok := s.LiveStats()
	if !ok || ls.Deltas != 1 || ls.ProbChanges != 1 {
		t.Fatalf("live stats %+v ok=%v", ls, ok)
	}
}

// TestIngestBitIdenticalToRebuild pins the correctness bar of the
// incremental pipeline: for a fixed seed, scores computed after a delta
// (through the patched-plan path) are bit-identical to a from-scratch
// system that rebuilt the same graph state before its first query.
func TestIngestBitIdenticalToRebuild(t *testing.T) {
	const seed = 11
	opts := Options{Trials: 400, Seed: 9}

	inc := liveSystem(t, seed)
	defer inc.Close()
	protein := inc.Proteins()[0]
	acc := inc.med.Accessions(protein)[0]
	req := []BatchRequest{{Protein: protein, Methods: []Method{Reliability}, Options: opts}}

	// Warm: compiles the plan and caches the pre-delta result.
	if r := inc.QueryBatch(req); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	if _, err := inc.Ingest(setProteinP(acc, 0.37)); err != nil {
		t.Fatal(err)
	}
	got := inc.QueryBatch(req)
	if got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	if ps := inc.PlanStats(); ps.Patches == 0 {
		t.Fatalf("probability-only delta did not patch the plan: %+v", ps)
	}

	// From-scratch rebuild of the same state: fresh world, same delta,
	// first query compiles everything anew.
	scratch := liveSystem(t, seed)
	defer scratch.Close()
	if _, err := scratch.Ingest(setProteinP(acc, 0.37)); err != nil {
		t.Fatal(err)
	}
	want := scratch.QueryBatch(req)
	if want[0].Err != nil {
		t.Fatal(want[0].Err)
	}
	if ps := scratch.PlanStats(); ps.Patches != 0 {
		t.Fatalf("fresh system should compile, not patch: %+v", ps)
	}

	g, w := got[0].Rankings[Reliability], want[0].Rankings[Reliability]
	if len(g) == 0 || len(g) != len(w) {
		t.Fatalf("rankings sized %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i].Label != w[i].Label || math.Float64bits(g[i].Score) != math.Float64bits(w[i].Score) {
			t.Fatalf("answer %d: patched (%s, %v) vs rebuilt (%s, %v)",
				i, g[i].Label, g[i].Score, w[i].Label, w[i].Score)
		}
	}
}

// TestIngestWhileQuerying races concurrent Ingest writers against
// QueryBatch readers — the regression test the -race CI step leans on
// for the live pipeline. Each writer owns one protein and revises its
// record repeatedly; readers hammer every protein throughout. The final
// state must equal a fresh system that applied only each writer's last
// delta, bit-for-bit.
func TestIngestWhileQuerying(t *testing.T) {
	const (
		seed    = 5
		writers = 3
		rounds  = 15
	)
	s := liveSystem(t, seed)
	defer s.Close()
	proteins := s.Proteins()[:writers]
	opts := Options{Trials: 100, Seed: 2}

	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		acc := s.med.Accessions(proteins[w])[0]
		wg.Add(2)
		go func(w int, acc string) {
			defer wg.Done()
			for k := 1; k <= rounds; k++ {
				d := setProteinP(acc, 0.3+0.4*float64(k)/rounds)
				d.Source = fmt.Sprintf("w%d", w)
				if _, err := s.Ingest(d); err != nil {
					errs <- err
					return
				}
			}
		}(w, acc)
		go func(p string) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				r := s.QueryBatch([]BatchRequest{{Protein: p, Methods: []Method{Reliability}, Options: opts}})
				if r[0].Err != nil {
					errs <- r[0].Err
					return
				}
			}
		}(proteins[(w+1)%writers])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ls, ok := s.LiveStats()
	if !ok || ls.Deltas != writers*rounds {
		t.Fatalf("live stats %+v ok=%v, want %d deltas", ls, ok, writers*rounds)
	}
	for w := 0; w < writers; w++ {
		if got := ls.Epochs[fmt.Sprintf("w%d", w)]; got != rounds {
			t.Fatalf("writer %d epoch %d, want %d", w, got, rounds)
		}
	}

	// The racing readers must not have poisoned anything: the surviving
	// state equals a fresh world that applied only the final revisions.
	scratch := liveSystem(t, seed)
	defer scratch.Close()
	for w := 0; w < writers; w++ {
		if _, err := scratch.Ingest(setProteinP(scratch.med.Accessions(proteins[w])[0], 0.3+0.4)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range proteins {
		req := []BatchRequest{{Protein: p, Methods: []Method{Reliability}, Options: opts}}
		got, want := s.QueryBatch(req), scratch.QueryBatch(req)
		if got[0].Err != nil || want[0].Err != nil {
			t.Fatal(got[0].Err, want[0].Err)
		}
		g, w2 := got[0].Rankings[Reliability], want[0].Rankings[Reliability]
		if len(g) == 0 || len(g) != len(w2) {
			t.Fatalf("%s: rankings sized %d vs %d", p, len(g), len(w2))
		}
		for i := range g {
			if g[i].Label != w2[i].Label || math.Float64bits(g[i].Score) != math.Float64bits(w2[i].Score) {
				t.Fatalf("%s answer %d: churned (%s, %v) vs rebuilt (%s, %v)",
					p, i, g[i].Label, g[i].Score, w2[i].Label, w2[i].Score)
			}
		}
	}
}

// TestIngestErrors pins the error contract: not-live systems refuse
// deltas, unknown ops are rejected, and a failing batch reports the
// batches applied before it.
func TestIngestErrors(t *testing.T) {
	s, err := NewDemoSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(setProteinP("x", 0.5)); err != ErrNotLive {
		t.Fatalf("ingest on non-live system: %v", err)
	}

	live := liveSystem(t, 1)
	if _, err := live.Ingest(IngestDelta{Source: "x", Ops: []IngestOp{{Op: "bogus"}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	acc := live.med.Accessions(live.Proteins()[0])[0]
	res, err := live.Ingest(
		setProteinP(acc, 0.5),
		IngestDelta{Source: "x", Ops: []IngestOp{
			{Op: "set-node-p", Node: IngestRef{Kind: "NoSuch", Label: "nope"}, P: 0.1},
		}},
	)
	if err == nil {
		t.Fatal("delta against a missing record accepted")
	}
	if res.Deltas != 1 || res.ProbChanges != 1 {
		t.Fatalf("partial result %+v, want the first batch applied", res)
	}

	if err := live.EnableLive(); err == nil {
		t.Fatal("double EnableLive accepted")
	}
}
