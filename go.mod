module biorank

go 1.24
