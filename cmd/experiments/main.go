// Command experiments regenerates the paper's tables and figures:
//
//	experiments table1 table2 table3 fig4 fig5 fig6 fig7 fig8
//	experiments all
//	experiments -quick all   # reduced trial counts for a fast pass
//
// Extensions beyond the paper run only when named explicitly:
//
//	experiments ablation scaling racer worlds planner stability degradation churn recovery
//
// Output is printed as fixed-width text tables with the paper's reported
// values alongside for comparison; EXPERIMENTS.md is generated from this
// command's output.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"biorank/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced trials/repeats for a fast pass")
		seed    = flag.Uint64("seed", 1, "world and simulation seed")
		trials  = flag.Int("trials", 0, "override Monte Carlo trials")
		repeats = flag.Int("repeats", 0, "override repetition count m for figures 6-7")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *repeats > 0 {
		opts.Repeats = *repeats
	}

	start := time.Now()
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worlds built and %d exploratory queries run in %v\n\n",
		len(suite.Graphs12)+len(suite.Graphs3), time.Since(start).Round(time.Millisecond))

	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() error {
		fmt.Println(experiments.RenderTable1(suite.Table1()))
		return nil
	})
	run("fig4", func() error {
		rows, err := experiments.Figure4()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig4(rows))
		return nil
	})
	run("fig5", func() error {
		panels, err := suite.Figure5()
		if err != nil {
			return err
		}
		for _, p := range panels {
			fmt.Println(experiments.RenderFig5(p))
		}
		return nil
	})
	run("table2", func() error {
		rows, err := suite.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRanks("Table 2: ranks of the 7 emerging functions", rows))
		return nil
	})
	run("table3", func() error {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRanks("Table 3: ranks of the 11 hypothetical proteins' functions", rows))
		return nil
	})
	run("fig6", func() error {
		panels, err := suite.Figure6()
		if err != nil {
			return err
		}
		for _, p := range panels {
			fmt.Println(experiments.RenderFig6(p))
		}
		return nil
	})
	run("fig7", func() error {
		res, err := suite.Figure7(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig7(res))
		return nil
	})
	run("fig8", func() error {
		res, err := suite.Figure8()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig8(res))
		return nil
	})
	// The ablation and scaling studies are extensions beyond the paper;
	// they only run when asked for explicitly.
	if want["ablation"] {
		run("ablation", func() error {
			rows, err := suite.Ablation()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderAblation(rows))
			return nil
		})
	}
	if want["scaling"] {
		run("scaling", func() error {
			rows, err := suite.Scaling(nil)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderScaling(rows))
			return nil
		})
	}
	if want["racer"] {
		run("racer", func() error {
			res, err := suite.RacerEfficiency(5)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderRacer(res))
			return nil
		})
	}
	if want["worlds"] {
		run("worlds", func() error {
			res, err := suite.BitParallel(opts.Trials)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderWorlds(res))
			return nil
		})
	}
	if want["planner"] {
		run("planner", func() error {
			res, err := suite.PlannerEfficiency(5)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderPlanner(res))
			return nil
		})
	}
	if want["stability"] {
		run("stability", func() error {
			res, err := suite.RankStability(5, opts.SensitivityTrials)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderStability(res))
			return nil
		})
	}
	if want["degradation"] {
		run("degradation", func() error {
			res, err := suite.AnytimeDegradation(0)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderDegradation(res))
			return nil
		})
	}
	if want["churn"] {
		run("churn", func() error {
			res, err := suite.Churn(0, 0, 0)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderChurn(res))
			// Durability pass: the same write stream, now through the WAL
			// under each fsync policy.
			dur, err := suite.ChurnDurability(0)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderChurnDurability(dur))
			return nil
		})
	}
	if want["recovery"] {
		run("recovery", func() error {
			res, err := suite.Recovery(nil)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderRecovery(res))
			return nil
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
