// Command biorank runs an exploratory protein-function query against the
// synthetic BioRank world and prints the ranked candidate functions —
// the workflow of the paper's Section 2 motivating example:
//
//	biorank -protein ABCC8 -method reliability -trials 10000
//
// Flags select the query protein, the ranking method, the Monte Carlo
// budget, the reliability estimator (-worlds for the bit-parallel
// possible-worlds kernel, -planner for the hybrid exact/Monte-Carlo
// planner, -topk N for the successive-elimination top-k race), and
// whether to use the scenario-3 (hypothetical proteins) world instead
// of the default well-studied-protein world.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"biorank"
)

func main() {
	var (
		protein      = flag.String("protein", "ABCC8", "query protein (gene name)")
		method       = flag.String("method", "reliability", "ranking method: reliability|propagation|diffusion|inedge|pathcount")
		trials       = flag.Int("trials", 10000, "Monte Carlo trials for reliability")
		seed         = flag.Uint64("seed", 1, "world and simulation seed")
		exact        = flag.Bool("exact", false, "compute reliability exactly (closed solution + factoring)")
		reduce       = flag.Bool("reduce", true, "apply graph reductions before Monte Carlo")
		hypothetical = flag.Bool("hypothetical", false, "query the scenario-3 world of hypothetical proteins")
		top          = flag.Int("top", 15, "show the top N functions (0 = all)")
		list         = flag.Bool("list", false, "list available proteins and exit")
		dotFile      = flag.String("dot", "", "write the query graph in Graphviz DOT format to this file")
		jsonFile     = flag.String("json", "", "write the query graph as JSON to this file")
		worlds       = flag.Bool("worlds", false, "use the bit-parallel possible-worlds kernel for reliability (256 worlds per block)")
		planner      = flag.Bool("planner", false, "use the hybrid exact/Monte-Carlo planner for reliability (answers carry confidence bounds)")
		topk         = flag.Int("topk", 0, "race only the top K functions by reliability with the successive-elimination ranker (0 = full ranking)")
	)
	flag.Parse()

	sys, err := buildSystem(*hypothetical, *seed)
	if err != nil {
		fatal(err)
	}
	if *list {
		fmt.Println(strings.Join(sys.Proteins(), "\n"))
		return
	}

	ans, err := sys.Query(*protein)
	if err != nil {
		fatal(err)
	}
	nodes, edges := ans.GraphSize()
	fmt.Printf("Exploratory query (EntrezProtein.name = %q, {AmiGO})\n", *protein)
	fmt.Printf("query graph: %d nodes, %d edges; answer set: %d candidate functions\n\n",
		nodes, edges, ans.Len())

	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(ans.DOT(*protein)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("query graph written to %s (DOT)\n", *dotFile)
	}
	if *jsonFile != "" {
		data, err := ans.MarshalJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonFile, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("query graph written to %s (JSON)\n", *jsonFile)
	}

	scored, err := ans.Rank(biorank.Method(*method), biorank.Options{
		Trials:  *trials,
		Seed:    *seed,
		Reduce:  *reduce,
		Exact:   *exact,
		Worlds:  *worlds,
		Planner: *planner,
		TopK:    *topk,
	})
	if err != nil {
		fatal(err)
	}

	golden := map[string]bool{}
	for _, f := range sys.GoldenFunctions(*protein) {
		golden[f] = true
	}
	emerging := map[string]bool{}
	for _, f := range sys.EmergingFunctions(*protein) {
		emerging[f] = true
	}

	limit := len(scored)
	if *top > 0 && *top < limit {
		limit = *top
	}
	fmt.Printf("%-4s %-14s %-10s %8s  %s\n", "#", "GO term", "rank", "r score", "function / status")
	for i := 0; i < limit; i++ {
		a := scored[i]
		status := biorank.FunctionName(a.Label)
		switch {
		case golden[a.Label]:
			status += "  [well-known]"
		case emerging[a.Label]:
			status += "  [NEW: recently published, not yet curated]"
		}
		rankStr := fmt.Sprintf("%d", a.RankLo)
		if a.RankHi != a.RankLo {
			rankStr = fmt.Sprintf("%d-%d", a.RankLo, a.RankHi)
		}
		fmt.Printf("%-4d %-14s %-10s %8.4f  %s\n", i+1, a.Label, rankStr, a.Score, status)
	}
	if limit < len(scored) {
		fmt.Printf("... (%d more)\n", len(scored)-limit)
	}

	ap := biorank.AveragePrecision(scored, func(l string) bool { return golden[l] })
	fmt.Printf("\naverage precision vs golden standard: %.3f (random baseline: %.3f)\n",
		ap, biorank.RandomAP(len(golden), len(scored)))
}

func buildSystem(hypothetical bool, seed uint64) (*biorank.System, error) {
	if hypothetical {
		return biorank.NewHypotheticalSystem(seed + 1)
	}
	return biorank.NewDemoSystem(seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "biorank:", err)
	os.Exit(1)
}
