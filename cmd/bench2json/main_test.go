package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadBaselineWalksAllSections checks the baseline loader finds
// benchmark entries at any nesting depth and keeps the fastest
// measurement when a name repeats across sections.
func TestLoadBaselineWalksAllSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `{
	  "note": "text",
	  "before": {"benchmarks": {"BenchmarkX": {"ns_per_op": 200, "allocs_per_op": 5000, "samples": 3}}},
	  "after": {"benchmarks": {
	    "BenchmarkX": {"ns_per_op": 100, "allocs_per_op": 40, "samples": 3},
	    "BenchmarkY": {"ns_per_op": 50, "samples": 3}
	  }},
	  "extra": {"deeper": {"BenchmarkZ": {"ns_per_op": 7}}},
	  "not_a_bench": {"BenchmarkBroken": {"other": 1}}
	}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkX"].NsPerOp; got != 100 {
		t.Errorf("BenchmarkX baseline = %v, want the fastest section's 100", got)
	}
	if got := base["BenchmarkX"].AllocsPerOp; got != 40 {
		t.Errorf("BenchmarkX allocs baseline = %v, want the lowest section's 40", got)
	}
	if got := base["BenchmarkY"]; got.NsPerOp != 50 || got.hasAllocs {
		t.Errorf("BenchmarkY baseline = %+v, want ns 50 with no allocs recorded", got)
	}
	if got := base["BenchmarkZ"].NsPerOp; got != 7 {
		t.Errorf("BenchmarkZ baseline = %v, want 7 (deeply nested)", got)
	}
	if _, ok := base["BenchmarkBroken"]; ok {
		t.Error("entry without ns_per_op must be skipped")
	}
}

// TestLoadBaselineErrors covers the failure modes the CI gate must
// surface loudly rather than silently passing.
func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed JSON must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"label": "x"}`), 0o644)
	if _, err := loadBaseline(empty); err == nil {
		t.Error("baseline without benchmarks must error")
	}
}

// TestBenchLineRegex pins the parser against representative go test
// -bench output shapes.
func TestBenchLineRegex(t *testing.T) {
	for _, tc := range []struct {
		line string
		name string
		ns   string
	}{
		{"BenchmarkTraversalMC1000-8   302   3890470 ns/op   637 B/op   1 allocs/op", "BenchmarkTraversalMC1000", "3890470"},
		{"BenchmarkBitParallel10000 \t 312\t   3950600 ns/op", "BenchmarkBitParallel10000", "3950600"},
		{"BenchmarkCompile-4 	 60000	 18713.5 ns/op	 45728 B/op	 15 allocs/op", "BenchmarkCompile", "18713.5"},
	} {
		m := benchLine.FindStringSubmatch(tc.line)
		if m == nil {
			t.Errorf("line %q did not match", tc.line)
			continue
		}
		if m[1] != tc.name || m[3] != tc.ns {
			t.Errorf("line %q parsed as (%s, %s), want (%s, %s)", tc.line, m[1], m[3], tc.name, tc.ns)
		}
	}
	if benchLine.MatchString("ok  \tbiorank/internal/kernel\t5.620s") {
		t.Error("summary line must not parse as a benchmark")
	}
}
