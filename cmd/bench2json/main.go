// Command bench2json converts `go test -bench` output into the
// BENCH_rank.json artifact format CI uploads per run, so the perf
// trajectory of the ranking kernels can be tracked across PRs:
//
//	go test -bench . -benchmem -run '^$' ./internal/rank ./internal/kernel | \
//	    go run ./cmd/bench2json -label after > BENCH_rank.json
//
// Repeated runs of the same benchmark (-count N) are averaged. Output
// maps benchmark name to ns/op, B/op, allocs/op and the number of
// samples averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkTraversalMC1000-8   302   3890470 ns/op   637 B/op   1 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

func main() {
	label := flag.String("label", "", "optional label recorded in the output (e.g. a commit or \"before\"/\"after\")")
	flag.Parse()

	acc := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytes, allocs float64
		if m[4] != "" {
			bytes, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		r := acc[m[1]]
		if r == nil {
			r = &Result{}
			acc[m[1]] = r
		}
		r.NsPerOp += ns
		r.BytesPerOp += bytes
		r.AllocsPerOp += allocs
		r.Samples++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(acc) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, r := range acc {
		n := float64(r.Samples)
		r.NsPerOp /= n
		r.BytesPerOp /= n
		r.AllocsPerOp /= n
	}

	// encoding/json emits map keys sorted, so the output is stable.
	out := map[string]any{"benchmarks": acc}
	if *label != "" {
		out["label"] = *label
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
