// Command bench2json converts `go test -bench` output into the
// BENCH_rank.json artifact format CI uploads per run, so the perf
// trajectory of the ranking kernels can be tracked across PRs:
//
//	go test -bench . -benchmem -run '^$' ./internal/rank ./internal/kernel | \
//	    go run ./cmd/bench2json -label after > BENCH_rank.json
//
// Repeated runs of the same benchmark (-count N) are averaged. Output
// maps benchmark name to ns/op, B/op, allocs/op and the number of
// samples averaged.
//
// With -baseline FILE the output additionally carries a "delta" section
// comparing the fresh run against the committed artifact: for every
// benchmark present in both, the baseline ns/op (the FASTEST
// measurement of that name anywhere in the baseline file — its sections
// may record the same benchmark before and after an optimization), the
// fresh ns/op, and the ratio fresh/baseline. Combined with -max-regress
// this becomes a CI gate:
//
//	go run ./cmd/bench2json -baseline BENCH_rank.json \
//	    -max-regress 0.25 -gate '^Benchmark(Compiled|BitParallel)' \
//	    < bench.txt > bench_delta.json
//
// exits with status 3 when any benchmark matching -gate regressed by
// more than the threshold; slower-but-within-threshold benchmarks only
// produce a soft-fail comment on stderr. Benchmarks in only one of the
// two runs are ignored by the gate.
//
// -max-allocs-regress gates allocs/op the same way (baseline = the
// LOWEST allocs_per_op recorded for the name anywhere in the baseline
// file). Benchmarks whose baseline allocation count is zero are skipped
// by the allocs gate — any ratio against zero is meaningless — as are
// baseline entries that never recorded allocs at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkTraversalMC1000-8   302   3890470 ns/op   637 B/op   1 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Delta is one benchmark's fresh-vs-baseline comparison.
type Delta struct {
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	// Ratio is fresh/baseline: 1.0 unchanged, 2.0 twice as slow.
	Ratio float64 `json:"ratio"`
	// BaselineAllocsPerOp / AllocsPerOp / AllocsRatio mirror the ns/op
	// triple for the allocation count. Omitted when the baseline never
	// recorded allocs for this benchmark or recorded zero.
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	AllocsPerOp         float64 `json:"allocs_per_op,omitempty"`
	AllocsRatio         float64 `json:"allocs_ratio,omitempty"`
	// Gated records whether the benchmark matched the -gate pattern and
	// therefore participates in the hard-fail decision.
	Gated bool `json:"gated,omitempty"`
}

func main() {
	label := flag.String("label", "", "optional label recorded in the output (e.g. a commit or \"before\"/\"after\")")
	baseline := flag.String("baseline", "", "committed BENCH_rank.json to diff the fresh run against (adds a \"delta\" section)")
	maxRegress := flag.Float64("max-regress", -1, "fail (exit 3) when a -gate benchmark's ns/op grew by more than this fraction over the baseline (e.g. 0.25 = +25%); negative disables the gate")
	maxAllocsRegress := flag.Float64("max-allocs-regress", -1, "fail (exit 3) when a -gate benchmark's allocs/op grew by more than this fraction over the baseline; negative disables the allocs gate, baseline-zero benchmarks are skipped")
	gate := flag.String("gate", "^Benchmark(Compiled|BitParallel)", "regexp selecting the benchmarks the -max-regress gate applies to")
	flag.Parse()

	acc := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytes, allocs float64
		if m[4] != "" {
			bytes, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		r := acc[m[1]]
		if r == nil {
			r = &Result{}
			acc[m[1]] = r
		}
		r.NsPerOp += ns
		r.BytesPerOp += bytes
		r.AllocsPerOp += allocs
		r.Samples++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(acc) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, r := range acc {
		n := float64(r.Samples)
		r.NsPerOp /= n
		r.BytesPerOp /= n
		r.AllocsPerOp /= n
	}

	// encoding/json emits map keys sorted, so the output is stable.
	out := map[string]any{"benchmarks": acc}
	if *label != "" {
		out["label"] = *label
	}

	regressed := false
	if *baseline != "" {
		gateRe, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json: bad -gate:", err)
			os.Exit(1)
		}
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		deltas := map[string]*Delta{}
		gatedSeen := 0
		for name, r := range acc {
			b, ok := base[name]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			d := &Delta{
				BaselineNsPerOp: b.NsPerOp,
				NsPerOp:         r.NsPerOp,
				Ratio:           r.NsPerOp / b.NsPerOp,
				Gated:           gateRe.MatchString(name),
			}
			if b.AllocsPerOp > 0 {
				d.BaselineAllocsPerOp = b.AllocsPerOp
				d.AllocsPerOp = r.AllocsPerOp
				d.AllocsRatio = r.AllocsPerOp / b.AllocsPerOp
			}
			deltas[name] = d
			if d.Gated {
				gatedSeen++
			}
			if *maxRegress >= 0 && d.Ratio > 1+*maxRegress {
				if d.Gated {
					regressed = true
					fmt.Fprintf(os.Stderr, "bench2json: REGRESSION %s: %.0f ns/op vs baseline %.0f (%.0f%% slower, threshold %.0f%%)\n",
						name, d.NsPerOp, d.BaselineNsPerOp, 100*(d.Ratio-1), 100**maxRegress)
				} else {
					fmt.Fprintf(os.Stderr, "bench2json: note: ungated benchmark %s is %.0f%% slower than baseline\n",
						name, 100*(d.Ratio-1))
				}
			} else if *maxRegress >= 0 && d.Ratio > 1 {
				// Soft-fail comment: slower, but inside the budget.
				fmt.Fprintf(os.Stderr, "bench2json: note: %s is %.0f%% slower than baseline (within the %.0f%% budget)\n",
					name, 100*(d.Ratio-1), 100**maxRegress)
			}
			if *maxAllocsRegress >= 0 && d.BaselineAllocsPerOp > 0 && d.AllocsRatio > 1+*maxAllocsRegress {
				if d.Gated {
					regressed = true
					fmt.Fprintf(os.Stderr, "bench2json: REGRESSION %s: %.1f allocs/op vs baseline %.1f (%.0f%% more, threshold %.0f%%)\n",
						name, d.AllocsPerOp, d.BaselineAllocsPerOp, 100*(d.AllocsRatio-1), 100**maxAllocsRegress)
				} else {
					fmt.Fprintf(os.Stderr, "bench2json: note: ungated benchmark %s allocates %.0f%% more than baseline\n",
						name, 100*(d.AllocsRatio-1))
				}
			}
		}
		out["delta"] = deltas
		out["baseline_file"] = *baseline
		// A gate that matches nothing is a disabled gate, not a passing
		// one: renamed benchmarks or a garbled bench run must fail loudly.
		if (*maxRegress >= 0 || *maxAllocsRegress >= 0) && gatedSeen == 0 {
			fmt.Fprintf(os.Stderr, "bench2json: gate %q matched no benchmark present in both the fresh run and %s — the regression gate would be a no-op\n", *gate, *baseline)
			os.Exit(1)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if regressed {
		os.Exit(3)
	}
}

// baseEntry is one benchmark's best baseline measurements: the fastest
// ns/op and the lowest allocs/op recorded for the name anywhere in the
// baseline file. AllocsPerOp is 0 when no section recorded allocations
// (or the best was genuinely zero); either way the allocs gate skips
// the benchmark.
type baseEntry struct {
	NsPerOp     float64
	AllocsPerOp float64
	hasAllocs   bool
}

// loadBaseline collects every benchmark measurement in a committed
// artifact, walking the JSON tree so all sections (before/after,
// topk_racer, bit_parallel, future ones) contribute. When a benchmark
// name appears in several sections the FASTEST ns/op (and lowest
// allocs/op) wins: the bar to clear is the best the repository has ever
// recorded for that name.
func loadBaseline(path string) (map[string]baseEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := map[string]baseEntry{}
	var walk func(v any)
	walk = func(v any) {
		m, ok := v.(map[string]any)
		if !ok {
			return
		}
		for k, child := range m {
			if strings.HasPrefix(k, "Benchmark") {
				if entry, ok := child.(map[string]any); ok {
					if ns, ok := entry["ns_per_op"].(float64); ok && ns > 0 {
						e, seen := out[k]
						if !seen || ns < e.NsPerOp {
							e.NsPerOp = ns
						}
						if allocs, ok := entry["allocs_per_op"].(float64); ok && allocs >= 0 {
							if !e.hasAllocs || allocs < e.AllocsPerOp {
								e.AllocsPerOp = allocs
							}
							e.hasAllocs = true
						}
						out[k] = e
						continue
					}
				}
			}
			walk(child)
		}
	}
	walk(root)
	if len(out) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmark entries found", path)
	}
	return out, nil
}
