package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"

	"biorank"
)

// ingester is the background refresher of a live server: delta batches
// submitted with "async": true are queued here and applied between
// queries by a dedicated goroutine, so slow writers never hold an HTTP
// connection open and the store sees one writer at a time. The queue is
// bounded; when it is full the submitting request is shed with 429, the
// same overload contract as ranking admission control.
type ingester struct {
	sys *biorank.System

	mu     sync.Mutex
	closed bool
	queue  chan []biorank.IngestDelta
	done   chan struct{}

	enqueued    atomic.Uint64
	applied     atomic.Uint64
	errors      atomic.Uint64
	dropped     atomic.Uint64
	invalidated atomic.Int64
}

func newIngester(sys *biorank.System, queueCap int) *ingester {
	if queueCap < 1 {
		queueCap = 1
	}
	ing := &ingester{
		sys:   sys,
		queue: make(chan []biorank.IngestDelta, queueCap),
		done:  make(chan struct{}),
	}
	go ing.run()
	return ing
}

// run applies queued batches until the queue is closed, then flushes
// whatever is left: a drain never drops an accepted delta.
func (ing *ingester) run() {
	defer close(ing.done)
	for batch := range ing.queue {
		res, err := ing.sys.Ingest(batch...)
		if err != nil {
			ing.errors.Add(1)
			log.Printf("biorankd: async ingest: %v", err)
		}
		ing.applied.Add(uint64(res.Deltas))
		ing.invalidated.Add(int64(res.Invalidated))
	}
}

// enqueue submits a batch without blocking; false means the queue is
// full or the ingester is draining.
func (ing *ingester) enqueue(batch []biorank.IngestDelta) bool {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closed {
		return false
	}
	select {
	case ing.queue <- batch:
		ing.enqueued.Add(1)
		return true
	default:
		ing.dropped.Add(1)
		return false
	}
}

// stop closes the queue and waits for the refresher to flush it. Safe to
// call more than once.
func (ing *ingester) stop() {
	ing.mu.Lock()
	if !ing.closed {
		ing.closed = true
		close(ing.queue)
	}
	ing.mu.Unlock()
	<-ing.done
}

// stats snapshots the refresher's counters for /stats.
func (ing *ingester) stats() map[string]any {
	return map[string]any{
		"queued":      len(ing.queue),
		"capacity":    cap(ing.queue),
		"enqueued":    ing.enqueued.Load(),
		"applied":     ing.applied.Load(),
		"dropped":     ing.dropped.Load(),
		"errors":      ing.errors.Load(),
		"invalidated": ing.invalidated.Load(),
	}
}

// ingestRequest is the wire form of /ingest: a batch of deltas (or a
// single delta without the "deltas" wrapper) plus the async toggle.
type ingestRequest struct {
	Deltas []biorank.IngestDelta `json:"deltas,omitempty"`
	biorank.IngestDelta
	// Async queues the batch for the background refresher instead of
	// applying it inline; the response is then 202 Accepted.
	Async bool `json:"async,omitempty"`
}

// handleIngest applies source deltas to the live graph. Synchronous
// requests return the full IngestResult (affected sources, invalidated
// cache entries, per-source epochs); asynchronous ones are queued for
// the background refresher and acknowledged with 202.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if !s.sys.Live() {
		httpError(w, http.StatusConflict, fmt.Errorf("server is not live; restart with -live"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	deltas := req.Deltas
	if len(deltas) == 0 && (req.Source != "" || len(req.Ops) > 0) {
		deltas = []biorank.IngestDelta{req.IngestDelta}
	}
	if len(deltas) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("deltas are required"))
		return
	}
	if req.Async {
		if !s.ready.Load() {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
			return
		}
		if s.ingest == nil || !s.ingest.enqueue(deltas) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, fmt.Errorf("ingest queue full"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"accepted": len(deltas), "queued": len(s.ingest.queue)}); err != nil {
			log.Printf("biorankd: encode: %v", err)
		}
		return
	}
	res, err := s.sys.Ingest(deltas...)
	if err != nil {
		// Batches before the failing one stayed applied; report both the
		// error and the partial effect so the caller can reconcile.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"error": err.Error(), "result": res}); err != nil {
			log.Printf("biorankd: encode: %v", err)
		}
		return
	}
	writeJSON(w, res)
}
