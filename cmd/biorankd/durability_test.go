package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"biorank"
)

// durableTestServer builds a live server whose store write-ahead-logs
// into dir with -fsync always, plus an async ingester — the biorankd
// configuration the durability tests exercise.
func durableTestServer(t *testing.T, seed uint64, dir string) *server {
	t.Helper()
	sys, err := biorank.NewDemoSystem(seed)
	if err != nil {
		t.Fatalf("demo system: %v", err)
	}
	if _, err := sys.EnableLiveDurable(biorank.DurabilityConfig{Dir: dir, Fsync: "always"}); err != nil {
		t.Fatalf("enable durable: %v", err)
	}
	srv := &server{sys: sys, world: "demo"}
	srv.ingest = newIngester(sys, 16)
	srv.ready.Store(true)
	t.Cleanup(sys.Close)
	return srv
}

// setPBody builds a one-op /ingest body revising acc's presence
// probability.
func setPBody(source, acc string, p float64, async bool) string {
	asyncField := ""
	if async {
		asyncField = `"async":true,`
	}
	return fmt.Sprintf(`{%s"source":%q,"ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":%q},"p":%g}]}`,
		asyncField, source, acc, p)
}

// TestDrainFlushesThenCheckpoints is the teardown-ordering regression
// test: async batches acknowledged with 202 before a shutdown must be
// applied by the drain's queue flush AND covered by the shutdown
// checkpoint. If drain() checkpointed before (or concurrently with) the
// final flush, LastCheckpointSeq would land below the flushed batches.
func TestDrainFlushesThenCheckpoints(t *testing.T) {
	dir := t.TempDir()
	srv := durableTestServer(t, 7, dir)
	acc := "NP_" + srv.sys.Proteins()[0]

	const batches = 6
	for i := 0; i < batches; i++ {
		code, out := do(t, srv.handleIngest, http.MethodPost, "/ingest",
			setPBody("churn", acc, 0.30+float64(i)*0.05, true))
		if code != http.StatusAccepted {
			t.Fatalf("async ingest %d -> %d: %v", i, code, out)
		}
	}
	// Drain immediately: some batches are typically still queued, so the
	// test only passes when the checkpoint runs after the flush.
	srv.drain()

	if applied := srv.ingest.applied.Load(); applied != batches {
		t.Fatalf("drain applied %d deltas, want %d", applied, batches)
	}
	live, ok := srv.sys.LiveStats()
	if !ok || live.Deltas != batches {
		t.Fatalf("live store holds %d deltas after drain, want %d", live.Deltas, batches)
	}
	ds, ok := srv.sys.DurabilityStats()
	if !ok {
		t.Fatal("no durability stats")
	}
	if ds.LastCheckpointSeq != batches {
		t.Fatalf("shutdown checkpoint at seq %d, want %d (checkpoint ran before the final flush?)",
			ds.LastCheckpointSeq, batches)
	}
}

// readWALSegments returns the directory's WAL segments as name→bytes.
func readWALSegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(segs))
	for _, seg := range segs {
		buf, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(seg)] = buf
	}
	return out
}

// TestIngestRetryMatchesCleanBatch pins the reconciliation contract of
// the 422 partial-failure path: a batch whose second delta fails
// validation applies its first delta only, and a corrected retry of the
// failed remainder leaves the store version, source epochs and the WAL
// contents byte-identical to a server that ingested one clean batch.
// Rejected deltas must therefore never reach the log.
func TestIngestRetryMatchesCleanBatch(t *testing.T) {
	goodOp := `{"source":"blast","ops":[{"op":"upsert-node","node":{"kind":"EntrezProtein","label":"NP_RETRY1"},"p":0.6}]}`
	fixedOp := `{"source":"curation","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"NP_RETRY1"},"p":0.8}]}`
	badOp := `{"source":"curation","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"NP_NO_SUCH"},"p":0.8}]}`

	dirA := t.TempDir()
	srvA := durableTestServer(t, 9, dirA)
	code, out := do(t, srvA.handleIngest, http.MethodPost, "/ingest",
		`{"deltas":[`+goodOp+`,`+badOp+`]}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("partial-failure batch -> %d: %v", code, out)
	}
	partial, ok := out["result"].(map[string]any)
	if !ok || partial["deltas"].(float64) != 1 {
		t.Fatalf("422 response does not report the partial effect: %v", out)
	}
	code, out = do(t, srvA.handleIngest, http.MethodPost, "/ingest",
		`{"deltas":[`+fixedOp+`]}`)
	if code != http.StatusOK {
		t.Fatalf("corrected retry -> %d: %v", code, out)
	}

	dirB := t.TempDir()
	srvB := durableTestServer(t, 9, dirB)
	if code, out := do(t, srvB.handleIngest, http.MethodPost, "/ingest",
		`{"deltas":[`+goodOp+`,`+fixedOp+`]}`); code != http.StatusOK {
		t.Fatalf("clean batch -> %d: %v", code, out)
	}

	liveA, _ := srvA.sys.LiveStats()
	liveB, _ := srvB.sys.LiveStats()
	if liveA.Version != liveB.Version || liveA.Deltas != liveB.Deltas {
		t.Fatalf("retry path at version %d/%d deltas, clean batch at %d/%d",
			liveA.Version, liveA.Deltas, liveB.Version, liveB.Deltas)
	}
	if len(liveA.Epochs) != len(liveB.Epochs) {
		t.Fatalf("epochs diverge: %v vs %v", liveA.Epochs, liveB.Epochs)
	}
	for src, ep := range liveB.Epochs {
		if liveA.Epochs[src] != ep {
			t.Fatalf("epoch[%s] = %d on the retry path, want %d", src, liveA.Epochs[src], ep)
		}
	}

	// The WAL itself must be identical: the rejected delta left no trace,
	// so both directories logged the same two records into the same
	// segments.
	if err := srvA.sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := srvB.sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	segsA, segsB := readWALSegments(t, dirA), readWALSegments(t, dirB)
	if len(segsA) == 0 || len(segsA) != len(segsB) {
		t.Fatalf("segment sets differ: %d vs %d", len(segsA), len(segsB))
	}
	for name, bufA := range segsA {
		bufB, ok := segsB[name]
		if !ok {
			t.Fatalf("segment %s missing from the clean directory", name)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("segment %s differs between retry and clean paths (%d vs %d bytes)",
				name, len(bufA), len(bufB))
		}
	}
}

// TestHelperDurableServer is not a test: it is the child process of
// TestKill9MidChurnRecovers, re-executing this test binary as a durable
// biorankd (fsync always) that serves until SIGKILLed. It prints its
// listen address on stdout and never returns on its own.
func TestHelperDurableServer(t *testing.T) {
	dir := os.Getenv("BIORANKD_E2E_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9MidChurnRecovers")
	}
	// Belt against leaks if the parent dies without killing us.
	go func() {
		time.Sleep(2 * time.Minute)
		os.Exit(1)
	}()
	sys, err := biorank.NewDemoSystem(13)
	if err != nil {
		t.Fatalf("demo system: %v", err)
	}
	if _, err := sys.EnableLiveDurable(biorank.DurabilityConfig{Dir: dir, Fsync: "always"}); err != nil {
		t.Fatalf("enable durable: %v", err)
	}
	srv := &server{sys: sys, world: "demo"}
	srv.ready.Store(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("ADDR=%s\n", ln.Addr())
	t.Fatal(http.Serve(ln, srv.mux())) // unreachable until killed
}

// TestKill9MidChurnRecovers is the end-to-end acceptance test for the
// fsync=always contract: a real biorankd child process is SIGKILLed in
// the middle of an ingest churn — no drain, no checkpoint, no WAL close
// — and a recovery over its directory must hold every delta the child
// acknowledged with 200 before dying. Zero acknowledged-then-lost.
func TestKill9MidChurnRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDurableServer$")
	cmd.Env = append(os.Environ(), "BIORANKD_E2E_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck // idempotent cleanup
		cmd.Wait()         //nolint:errcheck // reap
	}()

	// The child prints ADDR=host:port once its listener is up.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
				addrc <- a
				return
			}
		}
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported its listen address")
	}

	// Churn: hammer synchronous ingests and track the highest version the
	// server acknowledged. The main goroutine kills the child after 20
	// acknowledgements, so the kill lands between (or inside) requests.
	client := &http.Client{Timeout: 5 * time.Second}
	var (
		mu         sync.Mutex
		acked      uint64
		maxVersion uint64
	)
	churnDone := make(chan struct{})
	enough := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			body := setPBody("churn", "NP_CHURN", 0.2+float64(i%7)*0.1, false)
			if i == 0 {
				body = `{"source":"churn","ops":[{"op":"upsert-node","node":{"kind":"EntrezProtein","label":"NP_CHURN"},"p":0.5}]}`
			}
			resp, err := client.Post(base+"/ingest", "application/json", strings.NewReader(body))
			if err != nil {
				return // the kill landed
			}
			var res biorank.IngestResult
			code := resp.StatusCode
			decodeErr := jsonDecode(resp.Body, &res)
			resp.Body.Close()
			if code != http.StatusOK || decodeErr != nil {
				return
			}
			mu.Lock()
			acked++
			if res.Version > maxVersion {
				maxVersion = res.Version
			}
			if acked == 20 {
				close(enough)
			}
			mu.Unlock()
		}
	}()
	select {
	case <-enough:
	case <-churnDone:
		t.Fatal("churn ended before 20 acknowledgements")
	case <-time.After(60 * time.Second):
		t.Fatal("churn never reached 20 acknowledgements")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no sync
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // exits by signal
	<-churnDone
	mu.Lock()
	ackedFinal, wantVersion := acked, maxVersion
	mu.Unlock()

	// Recover the child's directory in-process and require every
	// acknowledged delta.
	sys, err := biorank.NewDemoSystem(13)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.EnableLiveDurable(biorank.DurabilityConfig{Dir: dir, Fsync: "always"})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer sys.Close()
	if !st.Recovered {
		t.Fatal("recovery did not engage")
	}
	live, _ := sys.LiveStats()
	if live.Version < wantVersion {
		t.Fatalf("recovered version %d < highest acknowledged %d: acknowledged deltas were lost",
			live.Version, wantVersion)
	}
	if live.Deltas < ackedFinal {
		t.Fatalf("recovered %d deltas < %d acknowledged", live.Deltas, ackedFinal)
	}
	t.Logf("kill -9 after %d acks at version %d; recovered to version %d (%d replayed, torn tail %v)",
		ackedFinal, wantVersion, live.Version, st.Recovery.Replayed, st.Recovery.TornTailTruncated)
}

// jsonDecode decodes one JSON value from r (a tiny helper so the churn
// loop stays readable).
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
