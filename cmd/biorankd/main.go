// Command biorankd serves BioRank over HTTP: exploratory
// protein-function queries ranked under any of the five relevance
// semantics, executed on the concurrent batch engine with its LRU
// result cache.
//
//	biorankd -addr :8080 -world demo -seed 1
//
// Endpoints:
//
//	POST /query   {"requests":[{"protein":"ABCC8","methods":["reliability"],
//	               "trials":1000,"seed":1,"reduce":true,"worlds":true}]}
//	              Ranks a batch of queries; a single object (no "requests"
//	              wrapper) is also accepted, as is GET /query?protein=ABCC8.
//	              "worlds" selects the bit-parallel Monte Carlo estimator
//	              (256 worlds per [4]uint64 block, trials rounded up to a
//	              multiple of 64; statistically equivalent to the scalar
//	              estimator but on a different RNG stream). "planner"
//	              selects the hybrid exact/Monte-Carlo planner; ranked
//	              answers then carry "lo"/"hi" confidence bounds and an
//	              "exact" marker.
//	POST /rank    {"graph":<query-graph JSON>,"methods":[...],"trials":...}
//	              Ranks a caller-supplied serialized query graph (the
//	              format written by biorank -json / Answers.MarshalJSON).
//	              Accepts "planner" like /query.
//	POST /topk    {"protein":"ABCC8","k":5,"trials":...,"seed":...}
//	              Races the answer set with the successive-elimination
//	              top-k ranker and returns only the certified top k,
//	              each with its confidence interval [lo, hi] and trial
//	              count, plus the race telemetry (candidates, pruned,
//	              rounds, candidateTrials). GET /topk?protein=ABCC8&k=5
//	              is also accepted. With "planner" answers solved exactly
//	              are marked "exact" (zero-width interval, zero trials)
//	              and the response reports "exactAnswers";
//	              "order":"lower" re-sorts the certified top k by the
//	              interval lower bound (a risk-averse presentation
//	              order).
//	POST /ingest  {"deltas":[{"source":"curation","ops":[{"op":"set-node-p",
//	              "node":{"kind":"EntrezProtein","label":"NP_000343"},
//	              "p":0.8}]}]}
//	              Applies source deltas to the live graph (requires
//	              -live). A single delta without the "deltas" wrapper is
//	              also accepted. The response reports what changed, which
//	              query keywords were invalidated (scoped to the proteins
//	              that can reach an affected record), and the per-source
//	              ingestion epochs. With "async": true the batch is queued
//	              for the background refresher instead (202 Accepted; 429
//	              when the queue is full, 503 while draining).
//	GET  /stats   Engine result- and plan-cache counters (hits, misses,
//	              evictions, scoped invalidations, plan patches),
//	              admission-control state (in-flight, queued, shed), live
//	              store and ingest-queue state (when -live) and server
//	              configuration.
//	GET  /healthz Liveness probe: 200 as long as the process serves.
//	GET  /readyz  Readiness probe: 200 while accepting work, 503 once
//	              a shutdown signal flips the server into draining.
//
// Deadlines: -default-timeout bounds every ranking request's latency;
// a per-request "timeoutMs" field (or query parameter) overrides it.
// A request that runs out of budget is not failed — the Monte Carlo
// estimators return the ranking built from the trials completed so
// far, every answer keeps a valid confidence interval, and the
// response carries "truncated": true.
//
// Overload: -max-inflight / -max-queue bound how much work may be
// admitted at once (engine admission control for /query, an
// equivalent server-side gate for /rank and /topk, which bypass the
// engine). Requests beyond capacity fail fast with 429 Too Many
// Requests and a Retry-After header estimating when capacity frees
// up.
//
// Shutdown: SIGINT/SIGTERM flip /readyz to 503, stop accepting new
// connections, and drain in-flight requests (up to -drain) before the
// process exits — no accepted request is dropped. The async ingest
// queue is flushed before teardown, and with -wal-dir the drain then
// checkpoints the flushed state and syncs the log.
//
// Durability: -wal-dir DIR (implies -live) write-ahead-logs every
// ingested delta and recovers the live graph on boot — newest valid
// checkpoint plus WAL replay — before /readyz turns ready. -fsync
// selects the append sync policy (always = no acknowledged delta is
// ever lost, interval = bounded loss window, never = page-cache only);
// -checkpoint-every N snapshots the graph after every N deltas and
// prunes covered log segments. /stats reports the WAL, checkpoint and
// recovery counters under "durability".
//
// With -pprof ADDR the server additionally exposes net/http/pprof
// profiling endpoints (/debug/pprof/...) on a separate listener, kept
// off the serving port so profiling is never accidentally public:
//
//	biorankd -addr :8080 -pprof localhost:6060
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"biorank"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		world          = flag.String("world", "demo", "world to serve: demo|hypothetical|full")
		seed           = flag.Uint64("seed", 1, "world seed")
		pprofAddr      = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
		defaultTimeout = flag.Duration("default-timeout", 0, "per-request ranking deadline (0 disables); requests may override with timeoutMs")
		maxInFlight    = flag.Int("max-inflight", 0, "max concurrently executing ranking requests (0 = worker count when -max-queue is set, else unlimited)")
		maxQueue       = flag.Int("max-queue", 0, "max admitted requests waiting beyond the in-flight set; beyond it requests are shed with 429 (0 with -max-inflight 0 = unlimited)")
		drain          = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
		live           = flag.Bool("live", false, "serve queries from a live mutable union graph and accept POST /ingest deltas")
		ingestQueue    = flag.Int("ingest-queue", 64, "async ingest queue capacity (with -live); full queues shed with 429")
		walDir         = flag.String("wal-dir", "", "write-ahead log directory; makes the live store durable and recovers state on boot (implies -live)")
		fsync          = flag.String("fsync", "interval", "WAL fsync policy with -wal-dir: always|interval|never")
		checkpointEach = flag.Int("checkpoint-every", 1024, "write a checkpoint after this many ingested deltas (with -wal-dir); 0 only checkpoints on shutdown")
	)
	flag.Parse()

	sys, err := buildSystem(*world, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biorankd:", err)
		os.Exit(1)
	}
	defer sys.Close()

	switch {
	case *walDir != "":
		// Recovery runs before the listener exists, so /readyz can never
		// say yes while the store is mid-replay.
		st, err := sys.EnableLiveDurable(biorank.DurabilityConfig{
			Dir:             *walDir,
			Fsync:           *fsync,
			CheckpointEvery: *checkpointEach,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "biorankd:", err)
			os.Exit(1)
		}
		*live = true
		if st.Recovered {
			log.Printf("biorankd: recovered %s: checkpoint %s (seq %d), %d replayed, %d skipped, torn tail %v, %dms",
				*walDir, st.Recovery.Checkpoint, st.Recovery.CheckpointSeq, st.Recovery.Replayed,
				st.Recovery.Skipped, st.Recovery.TornTailTruncated, st.Recovery.DurationMS)
		} else {
			log.Printf("biorankd: initialized durable live state in %s (fsync %s)", *walDir, *fsync)
		}
	case *live:
		if err := sys.EnableLive(); err != nil {
			fmt.Fprintln(os.Stderr, "biorankd:", err)
			os.Exit(1)
		}
	}

	if *maxInFlight > 0 || *maxQueue > 0 {
		if err := sys.ConfigureEngine(biorank.EngineConfig{MaxInFlight: *maxInFlight, MaxQueue: *maxQueue}); err != nil {
			fmt.Fprintln(os.Stderr, "biorankd:", err)
			os.Exit(1)
		}
	}

	srv := newServer(sys, *world, *defaultTimeout, *maxInFlight, *maxQueue)
	if *live {
		srv.ingest = newIngester(sys, *ingestQueue)
	}
	mux := srv.mux()

	if *pprofAddr != "" {
		go func() {
			pmux := http.NewServeMux()
			pmux.HandleFunc("/debug/pprof/", pprof.Index)
			pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("biorankd: pprof on %s/debug/pprof/", *pprofAddr)
			ps := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pmux,
				ReadHeaderTimeout: 5 * time.Second,
				ReadTimeout:       30 * time.Second,
				// CPU profiles block for their sampling window (30s by
				// default), so the write timeout must comfortably exceed it.
				WriteTimeout: 2 * time.Minute,
				IdleTimeout:  2 * time.Minute,
			}
			log.Printf("biorankd: pprof server exited: %v", ps.ListenAndServe())
		}()
	}

	// The write timeout caps how long one response may take end to end;
	// keep it clear of the ranking deadline so the deadline (which
	// degrades gracefully into a truncated ranking) always fires first.
	writeTimeout := 2 * time.Minute
	if *defaultTimeout > 0 && *defaultTimeout+30*time.Second > writeTimeout {
		writeTimeout = *defaultTimeout + 30*time.Second
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	srv.ready.Store(true)
	log.Printf("biorankd: serving %s world on %s", *world, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: flip readiness so load balancers stop routing here, then
	// let in-flight requests finish before the engine is torn down.
	srv.ready.Store(false)
	log.Printf("biorankd: shutdown signal, draining (up to %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("biorankd: drain incomplete: %v", err)
	}
	srv.drain()
	log.Printf("biorankd: drained, exiting")
}

// drain finishes a shutdown after the HTTP listener has stopped: the
// async ingest queue is flushed first, and only then is the durable
// state checkpointed and the WAL synced. The ordering is the fix for a
// teardown race — checkpointing before (or concurrently with) the final
// refresher flush would capture a sequence number below the queued
// batches, and under -fsync never the flushed batches' WAL records could
// still be sitting unsynced in the page cache when the process exits.
// Flush → checkpoint → sync makes every acknowledged 202 batch durable.
func (s *server) drain() {
	if s.ingest != nil {
		// Flush accepted deltas before the engine is torn down: an
		// acknowledged async batch is never dropped by a shutdown.
		s.ingest.stop()
	}
	if s.sys.LiveDurable() {
		if seq, err := s.sys.Checkpoint(); err != nil {
			log.Printf("biorankd: shutdown checkpoint: %v", err)
		} else {
			log.Printf("biorankd: shutdown checkpoint at seq %d", seq)
		}
		if err := s.sys.SyncWAL(); err != nil {
			log.Printf("biorankd: shutdown wal sync: %v", err)
		}
	}
}

func buildSystem(world string, seed uint64) (*biorank.System, error) {
	switch world {
	case "demo":
		return biorank.NewDemoSystem(seed)
	case "hypothetical":
		return biorank.NewHypotheticalSystem(seed)
	case "full":
		return biorank.NewFullSystem(seed)
	default:
		return nil, fmt.Errorf("unknown world %q (want demo|hypothetical|full)", world)
	}
}

type server struct {
	sys     *biorank.System
	world   string
	started time.Time
	// defaultTimeout bounds every ranking request's latency unless the
	// request carries its own timeoutMs; 0 disables.
	defaultTimeout time.Duration
	// ready is true while the server accepts work; flipped false at the
	// start of a drain so /readyz steers load balancers away.
	ready atomic.Bool
	// gate admission-controls /rank and /topk, which rank directly on
	// the request goroutine and so bypass the engine's own queue.
	gate *gate
	// ingest is the async delta refresher; nil unless -live.
	ingest *ingester
}

// newServer wires a handler set over a built system. maxInFlight and
// maxQueue mirror the engine's admission limits onto the server-side
// gate guarding the engine-bypassing endpoints.
func newServer(sys *biorank.System, world string, defaultTimeout time.Duration, maxInFlight, maxQueue int) *server {
	s := &server{sys: sys, world: world, started: time.Now(), defaultTimeout: defaultTimeout}
	if maxInFlight > 0 || maxQueue > 0 {
		capacity := maxInFlight
		if capacity <= 0 {
			capacity = 1
		}
		s.gate = &gate{capacity: capacity + maxQueue}
	}
	return s
}

// mux routes the server's endpoints.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

// handleReady is the readiness probe: 503 while starting up or
// draining, 200 otherwise. Liveness (/healthz) stays 200 throughout a
// drain — the process is healthy, just not accepting new work.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// gate is the server-side admission control for endpoints that rank on
// the request goroutine instead of the engine pool: at most capacity
// requests may be in the handler at once, the rest are shed with a
// service-time-derived retry hint (mirroring the engine's policy).
type gate struct {
	capacity int
	pending  atomic.Int64
	shed     atomic.Uint64
	avgNS    atomic.Int64
}

// acquire admits the caller (release must be called when done) or
// sheds it with a suggested retry delay.
func (g *gate) acquire() (release func(), retry time.Duration, ok bool) {
	if g == nil {
		return func() {}, 0, true
	}
	for {
		n := g.pending.Load()
		if int(n) >= g.capacity {
			g.shed.Add(1)
			return nil, g.retryAfter(), false
		}
		if g.pending.CompareAndSwap(n, n+1) {
			start := time.Now()
			return func() {
				g.observe(time.Since(start))
				g.pending.Add(-1)
			}, 0, true
		}
	}
}

// observe feeds the smoothed per-request service time (EWMA, α=1/8).
func (g *gate) observe(d time.Duration) {
	for {
		old := g.avgNS.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/8
		}
		if g.avgNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfter estimates when capacity frees up: the smoothed service
// time times the backlog, clamped to [100ms, 30s].
func (g *gate) retryAfter() time.Duration {
	avg := time.Duration(g.avgNS.Load())
	if avg <= 0 {
		avg = 50 * time.Millisecond
	}
	d := avg * time.Duration(g.pending.Load()+1)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// shedResponse writes the 429 of a load-shed request with its
// Retry-After header (whole seconds, rounded up, minimum 1).
func shedResponse(w http.ResponseWriter, retry time.Duration, err error) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	httpError(w, http.StatusTooManyRequests, err)
}

// requestTimeout resolves a request's ranking deadline: a positive
// timeoutMs overrides the server's -default-timeout.
func (s *server) requestTimeout(timeoutMs int) time.Duration {
	if timeoutMs > 0 {
		return time.Duration(timeoutMs) * time.Millisecond
	}
	return s.defaultTimeout
}

// rankingContext derives the context a direct (non-engine) ranking
// runs under from the HTTP request's context and the resolved timeout.
func (s *server) rankingContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	if to := s.requestTimeout(timeoutMs); to > 0 {
		return context.WithTimeout(r.Context(), to)
	}
	return r.Context(), func() {}
}

// queryRequest is the wire form of one ranking request.
type queryRequest struct {
	Protein  string   `json:"protein"`
	Methods  []string `json:"methods,omitempty"`
	Trials   int      `json:"trials,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Reduce   bool     `json:"reduce,omitempty"`
	Exact    bool     `json:"exact,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Adaptive bool     `json:"adaptive,omitempty"`
	TopK     int      `json:"topk,omitempty"`
	Worlds   bool     `json:"worlds,omitempty"`
	Planner  bool     `json:"planner,omitempty"`
	// TimeoutMs bounds this request's latency in milliseconds,
	// overriding the server's -default-timeout; on expiry the ranking
	// is returned truncated, not failed.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

func (q queryRequest) options() biorank.Options {
	return biorank.Options{Trials: q.Trials, Seed: q.Seed, Reduce: q.Reduce, Exact: q.Exact, Workers: q.Workers, Adaptive: q.Adaptive, TopK: q.TopK, Worlds: q.Worlds, Planner: q.Planner}
}

func (q queryRequest) methods() []biorank.Method {
	out := make([]biorank.Method, len(q.Methods))
	for i, m := range q.Methods {
		out[i] = biorank.Method(m)
	}
	return out
}

// scoredAnswer is the wire form of one ranked answer. Lo/Hi/Exact are
// present only when the estimator reported per-answer uncertainty (the
// hybrid planner).
type scoredAnswer struct {
	Kind   string   `json:"kind"`
	Label  string   `json:"label"`
	Name   string   `json:"name,omitempty"`
	Score  float64  `json:"score"`
	RankLo int      `json:"rankLo"`
	RankHi int      `json:"rankHi"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
	Exact  bool     `json:"exact,omitempty"`
}

// queryResult is the wire form of one ranking response.
type queryResult struct {
	Protein  string                    `json:"protein"`
	Error    string                    `json:"error,omitempty"`
	Answers  int                       `json:"answers,omitempty"`
	Rankings map[string][]scoredAnswer `json:"rankings,omitempty"`
	Cached   map[string]bool           `json:"cached,omitempty"`
	// Truncated reports that at least one method's ranking was cut
	// short by the request deadline and holds partial (but
	// interval-valid) estimates.
	Truncated bool `json:"truncated,omitempty"`
	// RetryAfterMs accompanies an overload error: the suggested backoff
	// before retrying this request.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

func toWire(sa []biorank.ScoredAnswer, named bool) []scoredAnswer {
	out := make([]scoredAnswer, len(sa))
	for i, a := range sa {
		out[i] = scoredAnswer{Kind: a.Kind, Label: a.Label, Score: a.Score, RankLo: a.RankLo, RankHi: a.RankHi, Exact: a.Exact}
		if a.HasBounds {
			lo, hi := a.Lo, a.Hi
			out[i].Lo, out[i].Hi = &lo, &hi
		}
		if named {
			out[i].Name = biorank.FunctionName(a.Label)
		}
	}
	return out
}

// handleQuery serves batched exploratory queries from the engine.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	reqs, err := parseQueryRequests(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	batch := make([]biorank.BatchRequest, len(reqs))
	for i, q := range reqs {
		if q.Protein == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: protein is required", i))
			return
		}
		if q.TimeoutMs < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: timeoutMs must be >= 0, got %d", i, q.TimeoutMs))
			return
		}
		batch[i] = biorank.BatchRequest{
			Protein: q.Protein,
			Methods: q.methods(),
			Options: q.options(),
			Timeout: s.requestTimeout(q.TimeoutMs),
		}
	}
	results := s.sys.QueryBatchCtx(r.Context(), batch)
	out := make([]queryResult, len(results))
	allShed, maxRetry := len(results) > 0, time.Duration(0)
	for i, res := range results {
		out[i] = queryResult{Protein: res.Protein}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
			if d, ok := biorank.RetryAfter(res.Err); ok {
				out[i].RetryAfterMs = d.Milliseconds()
				if d > maxRetry {
					maxRetry = d
				}
			} else {
				allShed = false
			}
			continue
		}
		allShed = false
		out[i].Answers = res.Answers.Len()
		out[i].Rankings = make(map[string][]scoredAnswer, len(res.Rankings))
		out[i].Cached = make(map[string]bool, len(res.Cached))
		for m, sa := range res.Rankings {
			out[i].Rankings[string(m)] = toWire(sa, true)
			out[i].Cached[string(m)] = res.Cached[m]
			if res.Truncated[m] {
				out[i].Truncated = true
			}
		}
	}
	// A batch shed in its entirety becomes an HTTP-level 429 so plain
	// clients back off; mixed batches stay 200 with per-result errors.
	if allShed {
		secs := int64((maxRetry + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"error": "overloaded", "results": out}); err != nil {
			log.Printf("biorankd: encode: %v", err)
		}
		return
	}
	writeJSON(w, map[string]any{"results": out})
}

// parseQueryRequests accepts GET query parameters, a single JSON
// object, or a {"requests":[...]} batch.
func parseQueryRequests(r *http.Request) ([]queryRequest, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req := queryRequest{Protein: q.Get("protein")}
		if m := q.Get("methods"); m != "" {
			req.Methods = strings.Split(m, ",")
		}
		for key, dst := range map[string]*bool{"reduce": &req.Reduce, "exact": &req.Exact, "adaptive": &req.Adaptive, "worlds": &req.Worlds, "planner": &req.Planner} {
			if v := q.Get(key); v != "" {
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("bad %s: %v", key, err)
				}
				*dst = b
			}
		}
		for key, dst := range map[string]*int{"trials": &req.Trials, "workers": &req.Workers, "topk": &req.TopK, "timeoutMs": &req.TimeoutMs} {
			if v := q.Get(key); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("bad %s: %v", key, err)
				}
				*dst = n
			}
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed: %v", err)
			}
			req.Seed = n
		}
		return []queryRequest{req}, nil
	}
	if r.Method != http.MethodPost {
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	var envelope struct {
		Requests []queryRequest `json:"requests"`
		queryRequest
	}
	if err := json.NewDecoder(r.Body).Decode(&envelope); err != nil {
		return nil, fmt.Errorf("bad JSON: %v", err)
	}
	if len(envelope.Requests) > 0 {
		return envelope.Requests, nil
	}
	return []queryRequest{envelope.queryRequest}, nil
}

// rankRequest is the wire form of /rank: a serialized query graph plus
// evaluation options.
type rankRequest struct {
	Graph    json.RawMessage `json:"graph"`
	Methods  []string        `json:"methods,omitempty"`
	Trials   int             `json:"trials,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	Reduce   bool            `json:"reduce,omitempty"`
	Exact    bool            `json:"exact,omitempty"`
	Workers  int             `json:"workers,omitempty"`
	Adaptive bool            `json:"adaptive,omitempty"`
	Worlds   bool            `json:"worlds,omitempty"`
	Planner  bool            `json:"planner,omitempty"`
	// TimeoutMs bounds the ranking's latency in milliseconds,
	// overriding -default-timeout; expiry truncates rather than fails.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// handleRank ranks a caller-supplied query graph under the requested
// methods, sharing the deserialized graph across all of them.
func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req rankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Graph) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("graph is required"))
		return
	}
	if req.TimeoutMs < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("timeoutMs must be >= 0, got %d", req.TimeoutMs))
		return
	}
	release, retry, ok := s.gate.acquire()
	if !ok {
		shedResponse(w, retry, errors.New("overloaded"))
		return
	}
	defer release()
	ans := &biorank.Answers{}
	if err := ans.UnmarshalJSON(req.Graph); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad graph: %v", err))
		return
	}
	opts := biorank.Options{Trials: req.Trials, Seed: req.Seed, Reduce: req.Reduce, Exact: req.Exact, Workers: req.Workers, Adaptive: req.Adaptive, Worlds: req.Worlds, Planner: req.Planner}
	methods := make([]biorank.Method, len(req.Methods))
	for i, m := range req.Methods {
		methods[i] = biorank.Method(m)
	}
	ctx, cancel := s.rankingContext(r, req.TimeoutMs)
	defer cancel()
	all, truncated, err := ans.RankAllCtx(ctx, opts, methods...)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rankings := make(map[string][]scoredAnswer, len(all))
	anyTruncated := false
	for m, sa := range all {
		rankings[string(m)] = toWire(sa, false)
		if truncated[m] {
			anyTruncated = true
		}
	}
	nodes, edges := ans.GraphSize()
	resp := map[string]any{
		"answers":  ans.Len(),
		"nodes":    nodes,
		"edges":    edges,
		"rankings": rankings,
	}
	if anyTruncated {
		resp["truncated"] = true
	}
	writeJSON(w, resp)
}

// topkRequest is the wire form of /topk. Order "lower" re-sorts the
// certified top k by interval lower bound (descending, stable).
type topkRequest struct {
	Protein string `json:"protein"`
	K       int    `json:"k,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Reduce  bool   `json:"reduce,omitempty"`
	Worlds  bool   `json:"worlds,omitempty"`
	Planner bool   `json:"planner,omitempty"`
	Order   string `json:"order,omitempty"`
	// TimeoutMs bounds the race's latency in milliseconds, overriding
	// -default-timeout; expiry returns the current standings with
	// "truncated": true instead of failing.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// topkAnswer is one certified top-k answer on the wire, with its
// confidence interval.
type topkAnswer struct {
	Kind   string  `json:"kind"`
	Label  string  `json:"label"`
	Name   string  `json:"name,omitempty"`
	Score  float64 `json:"score"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Trials int64   `json:"trials"`
	Exact  bool    `json:"exact,omitempty"`
}

// handleTopK races a protein's answer set with the successive-
// elimination top-k ranker and returns the certified top k with
// confidence bounds and race telemetry.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	req := topkRequest{K: 5}
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Protein = q.Get("protein")
		for key, dst := range map[string]*int{"k": &req.K, "trials": &req.Trials, "timeoutMs": &req.TimeoutMs} {
			if v := q.Get(key); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", key, err))
					return
				}
				*dst = n
			}
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %v", err))
				return
			}
			req.Seed = n
		}
		for key, dst := range map[string]*bool{"reduce": &req.Reduce, "worlds": &req.Worlds, "planner": &req.Planner} {
			if v := q.Get(key); v != "" {
				b, err := strconv.ParseBool(v)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", key, err))
					return
				}
				*dst = b
			}
		}
		req.Order = q.Get("order")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
			return
		}
		if req.K == 0 {
			req.K = 5
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if req.Protein == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("protein is required"))
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K))
		return
	}
	if req.Order != "" && req.Order != "score" && req.Order != "lower" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("order must be \"score\" or \"lower\", got %q", req.Order))
		return
	}
	if req.TimeoutMs < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("timeoutMs must be >= 0, got %d", req.TimeoutMs))
		return
	}
	release, retry, ok := s.gate.acquire()
	if !ok {
		shedResponse(w, retry, errors.New("overloaded"))
		return
	}
	defer release()
	ans, err := s.sys.Query(req.Protein)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel := s.rankingContext(r, req.TimeoutMs)
	defer cancel()
	res, err := ans.TopKCtx(ctx, req.K, biorank.Options{Trials: req.Trials, Seed: req.Seed, Reduce: req.Reduce, Worlds: req.Worlds, Planner: req.Planner})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	answers := make([]topkAnswer, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = topkAnswer{
			Kind:   a.Kind,
			Label:  a.Label,
			Name:   biorank.FunctionName(a.Label),
			Score:  a.Score,
			Lo:     a.Lo,
			Hi:     a.Hi,
			Trials: a.Trials,
			Exact:  a.Exact,
		}
	}
	if req.Order == "lower" {
		// Risk-averse presentation: within the certified top k, lead with
		// the answers whose reliability is best guaranteed. Stable, so
		// equal lower bounds keep the score order.
		sort.SliceStable(answers, func(i, j int) bool { return answers[i].Lo > answers[j].Lo })
	}
	resp := map[string]any{
		"protein":         req.Protein,
		"k":               req.K,
		"candidates":      res.Candidates,
		"trials":          res.Trials,
		"candidateTrials": res.CandidateTrials,
		"pruned":          res.Pruned,
		"rounds":          res.Rounds,
		"exactAnswers":    res.ExactAnswers,
		"answers":         answers,
	}
	if res.Truncated {
		resp["truncated"] = true
	}
	writeJSON(w, resp)
}

// handleStats reports engine result- and plan-cache counters and server
// configuration.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"world":    s.world,
		"uptime":   time.Since(s.started).String(),
		"proteins": len(s.sys.Proteins()),
		"sources":  s.sys.Sources(),
		"cache":    s.sys.CacheStats(),
		"plans":    s.sys.PlanStats(),
		"engine":   s.sys.EngineStats(),
		"ready":    s.ready.Load(),
	}
	if s.gate != nil {
		out["gate"] = map[string]any{
			"pending":  s.gate.pending.Load(),
			"capacity": s.gate.capacity,
			"shed":     s.gate.shed.Load(),
		}
	}
	if ls, ok := s.sys.LiveStats(); ok {
		out["live"] = ls
	}
	if ds, ok := s.sys.DurabilityStats(); ok {
		out["durability"] = ds
	}
	if s.ingest != nil {
		out["ingest"] = s.ingest.stats()
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("biorankd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
