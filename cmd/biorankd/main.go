// Command biorankd serves BioRank over HTTP: exploratory
// protein-function queries ranked under any of the five relevance
// semantics, executed on the concurrent batch engine with its LRU
// result cache.
//
//	biorankd -addr :8080 -world demo -seed 1
//
// Endpoints:
//
//	POST /query   {"requests":[{"protein":"ABCC8","methods":["reliability"],
//	               "trials":1000,"seed":1,"reduce":true,"worlds":true}]}
//	              Ranks a batch of queries; a single object (no "requests"
//	              wrapper) is also accepted, as is GET /query?protein=ABCC8.
//	              "worlds" selects the bit-parallel Monte Carlo estimator
//	              (256 worlds per [4]uint64 block, trials rounded up to a
//	              multiple of 64; statistically equivalent to the scalar
//	              estimator but on a different RNG stream). "planner"
//	              selects the hybrid exact/Monte-Carlo planner; ranked
//	              answers then carry "lo"/"hi" confidence bounds and an
//	              "exact" marker.
//	POST /rank    {"graph":<query-graph JSON>,"methods":[...],"trials":...}
//	              Ranks a caller-supplied serialized query graph (the
//	              format written by biorank -json / Answers.MarshalJSON).
//	              Accepts "planner" like /query.
//	POST /topk    {"protein":"ABCC8","k":5,"trials":...,"seed":...}
//	              Races the answer set with the successive-elimination
//	              top-k ranker and returns only the certified top k,
//	              each with its confidence interval [lo, hi] and trial
//	              count, plus the race telemetry (candidates, pruned,
//	              rounds, candidateTrials). GET /topk?protein=ABCC8&k=5
//	              is also accepted. With "planner" answers solved exactly
//	              are marked "exact" (zero-width interval, zero trials)
//	              and the response reports "exactAnswers";
//	              "order":"lower" re-sorts the certified top k by the
//	              interval lower bound (a risk-averse presentation
//	              order).
//	GET  /stats   Engine result- and plan-cache counters and server
//	              configuration.
//	GET  /healthz Liveness probe.
//
// With -pprof ADDR the server additionally exposes net/http/pprof
// profiling endpoints (/debug/pprof/...) on a separate listener, kept
// off the serving port so profiling is never accidentally public:
//
//	biorankd -addr :8080 -pprof localhost:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"biorank"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		world     = flag.String("world", "demo", "world to serve: demo|hypothetical|full")
		seed      = flag.Uint64("seed", 1, "world seed")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	sys, err := buildSystem(*world, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biorankd:", err)
		os.Exit(1)
	}
	defer sys.Close()

	srv := &server{sys: sys, world: *world, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/rank", srv.handleRank)
	mux.HandleFunc("/topk", srv.handleTopK)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	if *pprofAddr != "" {
		go func() {
			pmux := http.NewServeMux()
			pmux.HandleFunc("/debug/pprof/", pprof.Index)
			pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("biorankd: pprof on %s/debug/pprof/", *pprofAddr)
			ps := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("biorankd: pprof server exited: %v", ps.ListenAndServe())
		}()
	}

	log.Printf("biorankd: serving %s world on %s", *world, *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(hs.ListenAndServe())
}

func buildSystem(world string, seed uint64) (*biorank.System, error) {
	switch world {
	case "demo":
		return biorank.NewDemoSystem(seed)
	case "hypothetical":
		return biorank.NewHypotheticalSystem(seed)
	case "full":
		return biorank.NewFullSystem(seed)
	default:
		return nil, fmt.Errorf("unknown world %q (want demo|hypothetical|full)", world)
	}
}

type server struct {
	sys     *biorank.System
	world   string
	started time.Time
}

// queryRequest is the wire form of one ranking request.
type queryRequest struct {
	Protein  string   `json:"protein"`
	Methods  []string `json:"methods,omitempty"`
	Trials   int      `json:"trials,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Reduce   bool     `json:"reduce,omitempty"`
	Exact    bool     `json:"exact,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Adaptive bool     `json:"adaptive,omitempty"`
	TopK     int      `json:"topk,omitempty"`
	Worlds   bool     `json:"worlds,omitempty"`
	Planner  bool     `json:"planner,omitempty"`
}

func (q queryRequest) options() biorank.Options {
	return biorank.Options{Trials: q.Trials, Seed: q.Seed, Reduce: q.Reduce, Exact: q.Exact, Workers: q.Workers, Adaptive: q.Adaptive, TopK: q.TopK, Worlds: q.Worlds, Planner: q.Planner}
}

func (q queryRequest) methods() []biorank.Method {
	out := make([]biorank.Method, len(q.Methods))
	for i, m := range q.Methods {
		out[i] = biorank.Method(m)
	}
	return out
}

// scoredAnswer is the wire form of one ranked answer. Lo/Hi/Exact are
// present only when the estimator reported per-answer uncertainty (the
// hybrid planner).
type scoredAnswer struct {
	Kind   string   `json:"kind"`
	Label  string   `json:"label"`
	Name   string   `json:"name,omitempty"`
	Score  float64  `json:"score"`
	RankLo int      `json:"rankLo"`
	RankHi int      `json:"rankHi"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
	Exact  bool     `json:"exact,omitempty"`
}

// queryResult is the wire form of one ranking response.
type queryResult struct {
	Protein  string                    `json:"protein"`
	Error    string                    `json:"error,omitempty"`
	Answers  int                       `json:"answers,omitempty"`
	Rankings map[string][]scoredAnswer `json:"rankings,omitempty"`
	Cached   map[string]bool           `json:"cached,omitempty"`
}

func toWire(sa []biorank.ScoredAnswer, named bool) []scoredAnswer {
	out := make([]scoredAnswer, len(sa))
	for i, a := range sa {
		out[i] = scoredAnswer{Kind: a.Kind, Label: a.Label, Score: a.Score, RankLo: a.RankLo, RankHi: a.RankHi, Exact: a.Exact}
		if a.HasBounds {
			lo, hi := a.Lo, a.Hi
			out[i].Lo, out[i].Hi = &lo, &hi
		}
		if named {
			out[i].Name = biorank.FunctionName(a.Label)
		}
	}
	return out
}

// handleQuery serves batched exploratory queries from the engine.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	reqs, err := parseQueryRequests(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	batch := make([]biorank.BatchRequest, len(reqs))
	for i, q := range reqs {
		if q.Protein == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: protein is required", i))
			return
		}
		batch[i] = biorank.BatchRequest{Protein: q.Protein, Methods: q.methods(), Options: q.options()}
	}
	results := s.sys.QueryBatch(batch)
	out := make([]queryResult, len(results))
	for i, res := range results {
		out[i] = queryResult{Protein: res.Protein}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
			continue
		}
		out[i].Answers = res.Answers.Len()
		out[i].Rankings = make(map[string][]scoredAnswer, len(res.Rankings))
		out[i].Cached = make(map[string]bool, len(res.Cached))
		for m, sa := range res.Rankings {
			out[i].Rankings[string(m)] = toWire(sa, true)
			out[i].Cached[string(m)] = res.Cached[m]
		}
	}
	writeJSON(w, map[string]any{"results": out})
}

// parseQueryRequests accepts GET query parameters, a single JSON
// object, or a {"requests":[...]} batch.
func parseQueryRequests(r *http.Request) ([]queryRequest, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req := queryRequest{Protein: q.Get("protein")}
		if m := q.Get("methods"); m != "" {
			req.Methods = strings.Split(m, ",")
		}
		for key, dst := range map[string]*bool{"reduce": &req.Reduce, "exact": &req.Exact, "adaptive": &req.Adaptive, "worlds": &req.Worlds, "planner": &req.Planner} {
			if v := q.Get(key); v != "" {
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("bad %s: %v", key, err)
				}
				*dst = b
			}
		}
		for key, dst := range map[string]*int{"trials": &req.Trials, "workers": &req.Workers, "topk": &req.TopK} {
			if v := q.Get(key); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("bad %s: %v", key, err)
				}
				*dst = n
			}
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed: %v", err)
			}
			req.Seed = n
		}
		return []queryRequest{req}, nil
	}
	if r.Method != http.MethodPost {
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	var envelope struct {
		Requests []queryRequest `json:"requests"`
		queryRequest
	}
	if err := json.NewDecoder(r.Body).Decode(&envelope); err != nil {
		return nil, fmt.Errorf("bad JSON: %v", err)
	}
	if len(envelope.Requests) > 0 {
		return envelope.Requests, nil
	}
	return []queryRequest{envelope.queryRequest}, nil
}

// rankRequest is the wire form of /rank: a serialized query graph plus
// evaluation options.
type rankRequest struct {
	Graph    json.RawMessage `json:"graph"`
	Methods  []string        `json:"methods,omitempty"`
	Trials   int             `json:"trials,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	Reduce   bool            `json:"reduce,omitempty"`
	Exact    bool            `json:"exact,omitempty"`
	Workers  int             `json:"workers,omitempty"`
	Adaptive bool            `json:"adaptive,omitempty"`
	Worlds   bool            `json:"worlds,omitempty"`
	Planner  bool            `json:"planner,omitempty"`
}

// handleRank ranks a caller-supplied query graph under the requested
// methods, sharing the deserialized graph across all of them.
func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req rankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
		return
	}
	if len(req.Graph) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("graph is required"))
		return
	}
	ans := &biorank.Answers{}
	if err := ans.UnmarshalJSON(req.Graph); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad graph: %v", err))
		return
	}
	opts := biorank.Options{Trials: req.Trials, Seed: req.Seed, Reduce: req.Reduce, Exact: req.Exact, Workers: req.Workers, Adaptive: req.Adaptive, Worlds: req.Worlds, Planner: req.Planner}
	methods := make([]biorank.Method, len(req.Methods))
	for i, m := range req.Methods {
		methods[i] = biorank.Method(m)
	}
	all, err := ans.RankAll(opts, methods...)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rankings := make(map[string][]scoredAnswer, len(all))
	for m, sa := range all {
		rankings[string(m)] = toWire(sa, false)
	}
	nodes, edges := ans.GraphSize()
	writeJSON(w, map[string]any{
		"answers":  ans.Len(),
		"nodes":    nodes,
		"edges":    edges,
		"rankings": rankings,
	})
}

// topkRequest is the wire form of /topk. Order "lower" re-sorts the
// certified top k by interval lower bound (descending, stable).
type topkRequest struct {
	Protein string `json:"protein"`
	K       int    `json:"k,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Reduce  bool   `json:"reduce,omitempty"`
	Worlds  bool   `json:"worlds,omitempty"`
	Planner bool   `json:"planner,omitempty"`
	Order   string `json:"order,omitempty"`
}

// topkAnswer is one certified top-k answer on the wire, with its
// confidence interval.
type topkAnswer struct {
	Kind   string  `json:"kind"`
	Label  string  `json:"label"`
	Name   string  `json:"name,omitempty"`
	Score  float64 `json:"score"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Trials int64   `json:"trials"`
	Exact  bool    `json:"exact,omitempty"`
}

// handleTopK races a protein's answer set with the successive-
// elimination top-k ranker and returns the certified top k with
// confidence bounds and race telemetry.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	req := topkRequest{K: 5}
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Protein = q.Get("protein")
		for key, dst := range map[string]*int{"k": &req.K, "trials": &req.Trials} {
			if v := q.Get(key); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", key, err))
					return
				}
				*dst = n
			}
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %v", err))
				return
			}
			req.Seed = n
		}
		for key, dst := range map[string]*bool{"reduce": &req.Reduce, "worlds": &req.Worlds, "planner": &req.Planner} {
			if v := q.Get(key); v != "" {
				b, err := strconv.ParseBool(v)
				if err != nil {
					httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", key, err))
					return
				}
				*dst = b
			}
		}
		req.Order = q.Get("order")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
			return
		}
		if req.K == 0 {
			req.K = 5
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if req.Protein == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("protein is required"))
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K))
		return
	}
	if req.Order != "" && req.Order != "score" && req.Order != "lower" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("order must be \"score\" or \"lower\", got %q", req.Order))
		return
	}
	ans, err := s.sys.Query(req.Protein)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	res, err := ans.TopK(req.K, biorank.Options{Trials: req.Trials, Seed: req.Seed, Reduce: req.Reduce, Worlds: req.Worlds, Planner: req.Planner})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	answers := make([]topkAnswer, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = topkAnswer{
			Kind:   a.Kind,
			Label:  a.Label,
			Name:   biorank.FunctionName(a.Label),
			Score:  a.Score,
			Lo:     a.Lo,
			Hi:     a.Hi,
			Trials: a.Trials,
			Exact:  a.Exact,
		}
	}
	if req.Order == "lower" {
		// Risk-averse presentation: within the certified top k, lead with
		// the answers whose reliability is best guaranteed. Stable, so
		// equal lower bounds keep the score order.
		sort.SliceStable(answers, func(i, j int) bool { return answers[i].Lo > answers[j].Lo })
	}
	writeJSON(w, map[string]any{
		"protein":         req.Protein,
		"k":               req.K,
		"candidates":      res.Candidates,
		"trials":          res.Trials,
		"candidateTrials": res.CandidateTrials,
		"pruned":          res.Pruned,
		"rounds":          res.Rounds,
		"exactAnswers":    res.ExactAnswers,
		"answers":         answers,
	})
}

// handleStats reports engine result- and plan-cache counters and server
// configuration.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"world":    s.world,
		"uptime":   time.Since(s.started).String(),
		"proteins": len(s.sys.Proteins()),
		"sources":  s.sys.Sources(),
		"cache":    s.sys.CacheStats(),
		"plans":    s.sys.PlanStats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("biorankd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
