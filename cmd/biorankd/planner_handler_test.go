package main

import (
	"net/http"
	"testing"
)

// answerBounds pulls the lo/hi/score/exact fields of one wire answer,
// tolerating the omitted-when-absent encoding.
func answerBounds(t *testing.T, a map[string]any) (lo, hi, score float64, exact, hasBounds bool) {
	t.Helper()
	score = a["score"].(float64)
	if v, ok := a["exact"]; ok {
		exact = v.(bool)
	}
	loV, loOK := a["lo"]
	hiV, hiOK := a["hi"]
	if loOK != hiOK {
		t.Fatalf("answer has one of lo/hi but not both: %v", a)
	}
	if loOK {
		lo, hi, hasBounds = loV.(float64), hiV.(float64), true
	}
	return
}

func TestTopKHandlerPlanner(t *testing.T) {
	s := testServer(t)
	protein := s.sys.Proteins()[0]

	t.Run("planner GET reports bounds and exact markers", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodGet,
			"/topk?protein="+protein+"&k=3&trials=2000&seed=1&planner=true", "")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		if _, ok := out["exactAnswers"]; !ok {
			t.Fatalf("planner response missing exactAnswers telemetry: %v", out)
		}
		answers := out["answers"].([]any)
		if len(answers) != 3 {
			t.Fatalf("want 3 answers, got %d", len(answers))
		}
		for _, raw := range answers {
			a := raw.(map[string]any)
			lo, hi, score, exact, _ := answerBounds(t, a)
			if !(lo <= score && score <= hi) {
				t.Errorf("score %v outside [%v, %v]", score, lo, hi)
			}
			if exact {
				if lo != score || hi != score {
					t.Errorf("exact answer interval [%v, %v] not zero width at %v", lo, hi, score)
				}
				if trials := a["trials"].(float64); trials != 0 {
					t.Errorf("exact answer consumed %v trials", trials)
				}
			}
		}
	})

	t.Run("planner and worlds compose", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodPost, "/topk",
			`{"protein":"`+protein+`","k":3,"trials":2000,"seed":1,"planner":true,"worlds":true}`)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		for _, raw := range out["answers"].([]any) {
			a := raw.(map[string]any)
			trials := int64(a["trials"].(float64))
			exact := false
			if v, ok := a["exact"]; ok {
				exact = v.(bool)
			}
			// Monte Carlo answers run on the bit-parallel kernel (64-world
			// words); exact answers consume no trials at all.
			if exact && trials != 0 {
				t.Errorf("exact answer consumed %d trials", trials)
			}
			if !exact && (trials == 0 || trials%64 != 0) {
				t.Errorf("worlds trials %d is not a positive multiple of 64", trials)
			}
		}
	})

	t.Run("order=lower re-sorts by interval lower bound", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodGet,
			"/topk?protein="+protein+"&k=5&trials=2000&seed=1&planner=true&order=lower", "")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		answers := out["answers"].([]any)
		prev := 2.0
		for i, raw := range answers {
			lo := raw.(map[string]any)["lo"].(float64)
			if lo > prev {
				t.Fatalf("answer %d lower bound %v out of descending order (prev %v)", i, lo, prev)
			}
			prev = lo
		}
	})

	t.Run("bad order value", func(t *testing.T) {
		code, _ := do(t, s.handleTopK, http.MethodGet,
			"/topk?protein="+protein+"&order=banana", "")
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})
}

func TestRankHandlerPlannerBounds(t *testing.T) {
	s := testServer(t)
	ans, err := s.sys.Query(s.sys.Proteins()[1])
	if err != nil {
		t.Fatal(err)
	}
	graphJSON, err := ans.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	body := `{"graph":` + string(graphJSON) + `,"methods":["reliability"],"trials":2000,"seed":1,"planner":true}`
	code, out := do(t, s.handleRank, http.MethodPost, "/rank", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	ranked := out["rankings"].(map[string]any)["reliability"].([]any)
	if len(ranked) == 0 {
		t.Fatal("empty reliability ranking")
	}
	for _, raw := range ranked {
		a := raw.(map[string]any)
		lo, hi, score, exact, hasBounds := answerBounds(t, a)
		if !hasBounds {
			t.Fatalf("planner answer missing lo/hi bounds: %v", a)
		}
		if !(lo <= score && score <= hi) {
			t.Errorf("score %v outside [%v, %v]", score, lo, hi)
		}
		if exact && (lo != score || hi != score) {
			t.Errorf("exact answer interval [%v, %v] not zero width at %v", lo, hi, score)
		}
	}

	// Without the planner flag the same request carries no bounds.
	body = `{"graph":` + string(graphJSON) + `,"methods":["reliability"],"trials":2000,"seed":1}`
	code, out = do(t, s.handleRank, http.MethodPost, "/rank", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	for _, raw := range out["rankings"].(map[string]any)["reliability"].([]any) {
		a := raw.(map[string]any)
		if _, ok := a["lo"]; ok {
			t.Fatalf("plain Monte Carlo answer grew bounds: %v", a)
		}
	}
}

// TestQueryHandlerPlannerCacheKey pins that planner and plain Monte
// Carlo requests occupy distinct engine cache entries end to end: the
// planner repeat hits the cache, and the hit still carries bounds.
func TestQueryHandlerPlannerCacheKey(t *testing.T) {
	s := testServer(t)
	protein := s.sys.Proteins()[2]

	rank := func(planner bool) (map[string]any, bool) {
		body := `{"protein":"` + protein + `","methods":["reliability"],"trials":2000,"seed":77`
		if planner {
			body += `,"planner":true`
		}
		body += `}`
		code, out := do(t, s.handleQuery, http.MethodPost, "/query", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		res := out["results"].([]any)[0].(map[string]any)
		if errMsg, ok := res["error"]; ok && errMsg != "" {
			t.Fatalf("result error: %v", errMsg)
		}
		cached := res["cached"].(map[string]any)["reliability"].(bool)
		return res, cached
	}

	if _, cached := rank(false); cached {
		t.Fatal("first Monte Carlo request cannot be cached")
	}
	if _, cached := rank(true); cached {
		t.Fatal("planner request served from the Monte Carlo cache entry")
	}
	res, cached := rank(true)
	if !cached {
		t.Fatal("identical planner repeat missed the cache")
	}
	for _, raw := range res["rankings"].(map[string]any)["reliability"].([]any) {
		a := raw.(map[string]any)
		lo, hi, score, _, hasBounds := answerBounds(t, a)
		if !hasBounds {
			t.Fatalf("cached planner hit lost its bounds: %v", a)
		}
		if !(lo <= score && score <= hi) {
			t.Errorf("cached score %v outside [%v, %v]", score, lo, hi)
		}
	}
}
