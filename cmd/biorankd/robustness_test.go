package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestReadyzProbe(t *testing.T) {
	s := testServer(t)

	w := httptest.NewRecorder()
	s.handleReady(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("before start: status %d, want 503", w.Code)
	}

	s.ready.Store(true)
	defer s.ready.Store(false)
	w = httptest.NewRecorder()
	s.handleReady(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("ready: status %d, want 200", w.Code)
	}

	// Draining flips it back to 503 while /healthz stays alive.
	s.ready.Store(false)
	w = httptest.NewRecorder()
	s.handleReady(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", w.Code)
	}
}

func TestGateShedsWith429(t *testing.T) {
	s := testServer(t)
	s.gate = &gate{capacity: 1}
	defer func() { s.gate = nil }()

	release, _, ok := s.gate.acquire()
	if !ok {
		t.Fatal("first acquire shed on an empty gate")
	}
	defer release()

	for _, ep := range []struct {
		name, target, body string
		h                  http.HandlerFunc
	}{
		{"topk", "/topk?protein=" + s.sys.Proteins()[0], "", s.handleTopK},
		{"rank", "/rank", `{"graph":{"nodes":[]}}`, s.handleRank},
	} {
		var r *http.Request
		if ep.body == "" {
			r = httptest.NewRequest(http.MethodGet, ep.target, nil)
		} else {
			r = httptest.NewRequest(http.MethodPost, ep.target, strings.NewReader(ep.body))
		}
		w := httptest.NewRecorder()
		ep.h(w, r)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429 (%s)", ep.name, w.Code, w.Body.String())
		}
		ra := w.Header().Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s: missing Retry-After header", ep.name)
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("%s: Retry-After %q is not a positive whole-second count", ep.name, ra)
		}
	}
}

func TestQueryTimeoutTruncates(t *testing.T) {
	s := testServer(t)
	body := `{"protein":"` + s.sys.Proteins()[0] + `","methods":["reliability"],"trials":100000000,"seed":1,"timeoutMs":1}`
	code, out := do(t, s.handleQuery, http.MethodPost, "/query", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	res := out["results"].([]any)[0].(map[string]any)
	if errMsg, ok := res["error"]; ok && errMsg != "" {
		t.Fatalf("deadline produced an error instead of truncation: %v", errMsg)
	}
	if res["truncated"] != true {
		t.Fatalf(`want "truncated": true, got %v`, res)
	}
	ranked, ok := res["rankings"].(map[string]any)["reliability"].([]any)
	if !ok || len(ranked) == 0 {
		t.Fatalf("truncated response lost its partial ranking: %v", res)
	}
	for _, a := range ranked {
		m := a.(map[string]any)
		score := m["score"].(float64)
		lo, hasLo := m["lo"].(float64)
		hi, hasHi := m["hi"].(float64)
		if !hasLo || !hasHi {
			t.Fatalf("truncated answer missing confidence bounds: %v", m)
		}
		if !(0 <= lo && lo <= score && score <= hi && hi <= 1) {
			t.Fatalf("invalid truncated interval lo=%v score=%v hi=%v", lo, score, hi)
		}
	}
}

func TestTopKTimeoutTruncates(t *testing.T) {
	s := testServer(t)
	// An already-expired request deadline (the wall-clock-free stand-in
	// for a race that outlives its budget) must yield the current
	// standings flagged truncated, not an error.
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	r := httptest.NewRequest(http.MethodGet,
		"/topk?protein="+s.sys.Proteins()[0]+"&k=3&trials=2000&seed=1", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	s.handleTopK(w, r)
	code := w.Code
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON response %q: %v", w.Body.String(), err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["truncated"] != true {
		t.Fatalf(`want "truncated": true, got %v`, out)
	}
	answers := out["answers"].([]any)
	if len(answers) != 3 {
		t.Fatalf("truncated race lost its standings: %v", out["answers"])
	}
	for _, a := range answers {
		m := a.(map[string]any)
		lo, hi, score := m["lo"].(float64), m["hi"].(float64), m["score"].(float64)
		if !(lo <= score && score <= hi) {
			t.Fatalf("truncated answer outside its bounds: %v", m)
		}
	}
}

func TestMalformedTimeout(t *testing.T) {
	s := testServer(t)
	protein := s.sys.Proteins()[0]

	if code, _ := do(t, s.handleQuery, http.MethodGet, "/query?protein="+protein+"&timeoutMs=banana", ""); code != http.StatusBadRequest {
		t.Fatalf("GET timeoutMs=banana: status %d, want 400", code)
	}
	if code, _ := do(t, s.handleQuery, http.MethodPost, "/query", `{"protein":"`+protein+`","timeoutMs":-5}`); code != http.StatusBadRequest {
		t.Fatalf("negative timeoutMs: status %d, want 400", code)
	}
	if code, _ := do(t, s.handleQuery, http.MethodPost, "/query", `{"protein":"`+protein+`","timeoutMs":"1s"}`); code != http.StatusBadRequest {
		t.Fatalf("string timeoutMs: status %d, want 400", code)
	}
	if code, _ := do(t, s.handleTopK, http.MethodGet, "/topk?protein="+protein+"&timeoutMs=banana", ""); code != http.StatusBadRequest {
		t.Fatalf("topk timeoutMs=banana: status %d, want 400", code)
	}
	if code, _ := do(t, s.handleRank, http.MethodPost, "/rank", `{"graph":{"nodes":[]},"timeoutMs":-1}`); code != http.StatusBadRequest {
		t.Fatalf("rank negative timeoutMs: status %d, want 400", code)
	}
}

// A generous deadline must not perturb results: the response completes
// untruncated and scores match the deadline-free run.
func TestTimeoutCompletedUnchanged(t *testing.T) {
	s := testServer(t)
	body := `{"protein":"` + s.sys.Proteins()[1] + `","methods":["reliability"],"trials":2000,"seed":42}`
	codeA, outA := do(t, s.handleQuery, http.MethodPost, "/query", body)
	bodyTo := `{"protein":"` + s.sys.Proteins()[1] + `","methods":["reliability"],"trials":2000,"seed":42,"timeoutMs":` +
		strconv.Itoa(int((10 * time.Minute).Milliseconds())) + `}`
	codeB, outB := do(t, s.handleQuery, http.MethodPost, "/query", bodyTo)
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("status %d / %d", codeA, codeB)
	}
	resA := outA["results"].([]any)[0].(map[string]any)
	resB := outB["results"].([]any)[0].(map[string]any)
	if resB["truncated"] == true {
		t.Fatal("generous deadline reported truncation")
	}
	ra := resA["rankings"].(map[string]any)["reliability"].([]any)
	rb := resB["rankings"].(map[string]any)["reliability"].([]any)
	if len(ra) != len(rb) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		sa := ra[i].(map[string]any)["score"].(float64)
		sb := rb[i].(map[string]any)["score"].(float64)
		if sa != sb {
			t.Fatalf("answer %d: score %v with deadline != %v without", i, sb, sa)
		}
	}
}

// Shutdown must drain: a request in flight when Shutdown begins is
// served to completion, not dropped.
func TestShutdownDrainsInFlight(t *testing.T) {
	s := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.mux()}
	go hs.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown
	url := "http://" + ln.Addr().String()

	type reply struct {
		code int
		body []byte
		err  error
	}
	done := make(chan reply, 1)
	// ~0.5s of simulation in a normal run — long enough for the poll
	// below to observe it in flight, short enough to drain comfortably
	// even under the race detector's ~20x slowdown.
	body := `{"protein":"` + s.sys.Proteins()[0] + `","methods":["reliability"],"trials":300000,"seed":99}`
	go func() {
		resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			done <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- reply{code: resp.StatusCode, body: b, err: err}
	}()

	// Wait until the request is executing on the engine, then drain.
	for i := 0; i < 5000 && s.sys.EngineStats().InFlight == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("drain incomplete: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain: %s", r.code, r.body)
	}
	var out map[string]any
	if err := json.Unmarshal(r.body, &out); err != nil {
		t.Fatalf("drained response is not complete JSON: %v", err)
	}
	res := out["results"].([]any)[0].(map[string]any)
	if errMsg, ok := res["error"]; ok && errMsg != "" {
		t.Fatalf("drained request errored: %v", errMsg)
	}
	if _, ok := res["rankings"].(map[string]any)["reliability"]; !ok {
		t.Fatalf("drained response lost its ranking: %v", res)
	}
}
