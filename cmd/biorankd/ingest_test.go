package main

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"biorank"
)

var (
	liveSrvOnce sync.Once
	liveSrv     *server
)

// liveTestServer builds one live demo server shared by the ingest tests
// (the package-wide testSrv is deliberately not live, so the 409 path
// stays testable against it).
func liveTestServer(t *testing.T) *server {
	t.Helper()
	liveSrvOnce.Do(func() {
		sys, err := biorank.NewDemoSystem(2)
		if err != nil {
			t.Fatalf("demo system: %v", err)
		}
		if err := sys.EnableLive(); err != nil {
			t.Fatalf("enable live: %v", err)
		}
		liveSrv = &server{sys: sys, world: "demo"}
		liveSrv.ingest = newIngester(sys, 4)
		liveSrv.ready.Store(true)
	})
	if liveSrv == nil {
		t.Fatal("live demo system failed in an earlier test")
	}
	return liveSrv
}

func TestIngestHandler(t *testing.T) {
	s := liveTestServer(t)
	protein := s.sys.Proteins()[0]
	acc := "NP_" + protein // the synth worlds' accession scheme

	t.Run("method not allowed", func(t *testing.T) {
		if code, _ := do(t, s.handleIngest, http.MethodGet, "/ingest", ""); code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /ingest -> %d", code)
		}
	})

	t.Run("not live", func(t *testing.T) {
		plain := testServer(t)
		code, out := do(t, plain.handleIngest, http.MethodPost, "/ingest",
			`{"source":"x","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"y"},"p":0.5}]}`)
		if code != http.StatusConflict {
			t.Fatalf("ingest on non-live server -> %d: %v", code, out)
		}
	})

	t.Run("bad JSON", func(t *testing.T) {
		if code, _ := do(t, s.handleIngest, http.MethodPost, "/ingest", "{"); code != http.StatusBadRequest {
			t.Fatalf("bad JSON -> %d", code)
		}
	})

	t.Run("no deltas", func(t *testing.T) {
		if code, _ := do(t, s.handleIngest, http.MethodPost, "/ingest", "{}"); code != http.StatusBadRequest {
			t.Fatalf("empty request -> %d", code)
		}
	})

	t.Run("sync apply with scoped invalidation", func(t *testing.T) {
		// Warm the result cache so the delta has something to invalidate.
		code, _ := do(t, s.handleQuery, http.MethodPost, "/query",
			`{"protein":"`+protein+`","methods":["reliability"],"trials":200,"seed":1}`)
		if code != http.StatusOK {
			t.Fatalf("warm query -> %d", code)
		}
		code, out := do(t, s.handleIngest, http.MethodPost, "/ingest",
			`{"source":"curation","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"`+acc+`"},"p":0.8}]}`)
		if code != http.StatusOK {
			t.Fatalf("sync ingest -> %d: %v", code, out)
		}
		if out["deltas"].(float64) != 1 || out["probChanges"].(float64) != 1 || out["probOnly"] != true {
			t.Fatalf("ingest result %v", out)
		}
		affected, _ := out["affectedSources"].([]any)
		if len(affected) != 1 || affected[0] != protein {
			t.Fatalf("affectedSources %v, want [%s]", affected, protein)
		}
		if out["invalidated"].(float64) < 1 {
			t.Fatalf("no cache entries invalidated: %v", out)
		}
		epochs := out["epochs"].(map[string]any)
		if epochs["curation"].(float64) != 1 {
			t.Fatalf("epochs %v", epochs)
		}
	})

	t.Run("validation error reports partial state", func(t *testing.T) {
		code, out := do(t, s.handleIngest, http.MethodPost, "/ingest",
			`{"deltas":[
				{"source":"a","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"`+acc+`"},"p":0.7}]},
				{"source":"b","ops":[{"op":"set-node-p","node":{"kind":"NoSuch","label":"nope"},"p":0.1}]}
			]}`)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("partial failure -> %d: %v", code, out)
		}
		if out["error"] == nil {
			t.Fatalf("no error reported: %v", out)
		}
		res := out["result"].(map[string]any)
		if res["deltas"].(float64) != 1 {
			t.Fatalf("partial result %v, want the first batch applied", res)
		}
	})

	t.Run("async accepted and applied by the refresher", func(t *testing.T) {
		before := s.ingest.applied.Load()
		code, out := do(t, s.handleIngest, http.MethodPost, "/ingest",
			`{"async":true,"source":"feed","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"`+acc+`"},"p":0.6}]}`)
		if code != http.StatusAccepted {
			t.Fatalf("async ingest -> %d: %v", code, out)
		}
		if out["accepted"].(float64) != 1 {
			t.Fatalf("accepted %v", out)
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.ingest.applied.Load() == before {
			if time.Now().After(deadline) {
				t.Fatal("refresher never applied the queued batch")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if st, ok := s.sys.LiveStats(); !ok || st.Epochs["feed"] != 1 {
			t.Fatalf("live stats after async apply: %+v ok=%v", st, ok)
		}
	})

	t.Run("draining sheds async ingest", func(t *testing.T) {
		s.ready.Store(false)
		defer s.ready.Store(true)
		code, _ := do(t, s.handleIngest, http.MethodPost, "/ingest",
			`{"async":true,"source":"feed","ops":[{"op":"set-node-p","node":{"kind":"EntrezProtein","label":"`+acc+`"},"p":0.5}]}`)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("draining async ingest -> %d", code)
		}
	})

	t.Run("stats expose live store and ingest queue", func(t *testing.T) {
		code, out := do(t, s.handleStats, http.MethodGet, "/stats", "")
		if code != http.StatusOK {
			t.Fatalf("stats -> %d", code)
		}
		live, ok := out["live"].(map[string]any)
		if !ok || live["Deltas"].(float64) < 1 {
			t.Fatalf("stats live section %v", out["live"])
		}
		ing, ok := out["ingest"].(map[string]any)
		if !ok || ing["applied"].(float64) < 1 {
			t.Fatalf("stats ingest section %v", out["ingest"])
		}
		cache, ok := out["cache"].(map[string]any)
		if !ok {
			t.Fatalf("stats cache section %v", out["cache"])
		}
		if _, ok := cache["Invalidations"]; !ok {
			t.Fatalf("cache stats missing Invalidations: %v", cache)
		}
		plans := out["plans"].(map[string]any)
		if _, ok := plans["Patches"]; !ok {
			t.Fatalf("plan stats missing Patches: %v", plans)
		}
	})
}

// TestIngesterStopFlushes pins the drain contract: batches accepted
// before stop are applied before stop returns.
func TestIngesterStopFlushes(t *testing.T) {
	sys, err := biorank.NewDemoSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableLive(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	protein := sys.Proteins()[0]
	ing := newIngester(sys, 8)
	for i := 0; i < 5; i++ {
		ok := ing.enqueue([]biorank.IngestDelta{{Source: "feed", Ops: []biorank.IngestOp{
			{Op: "set-node-p", Node: biorank.IngestRef{Kind: "EntrezProtein", Label: "NP_" + protein}, P: 0.1 * float64(i+1)},
		}}})
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	ing.stop()
	if got := ing.applied.Load(); got != 5 {
		t.Fatalf("applied %d of 5 accepted batches", got)
	}
	if ing.enqueue(nil) {
		t.Fatal("enqueue after stop accepted")
	}
	ing.stop() // idempotent
	st, _ := sys.LiveStats()
	if st.Epochs["feed"] != 5 {
		t.Fatalf("epochs %v", st.Epochs)
	}
}
