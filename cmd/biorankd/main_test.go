package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"biorank"
)

var (
	testSrvOnce sync.Once
	testSrv     *server
)

// testServer builds one demo-world server shared by every handler test
// (world construction is the expensive part).
func testServer(t *testing.T) *server {
	t.Helper()
	testSrvOnce.Do(func() {
		sys, err := biorank.NewDemoSystem(1)
		if err != nil {
			t.Fatalf("demo system: %v", err)
		}
		testSrv = &server{sys: sys, world: "demo"}
	})
	if testSrv == nil {
		t.Fatal("demo system failed in an earlier test")
	}
	return testSrv
}

// do runs one request through a handler and decodes the JSON response.
func do(t *testing.T, h http.HandlerFunc, method, target, body string) (int, map[string]any) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h(w, r)
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q: %v", method, target, w.Body.String(), err)
	}
	return w.Code, out
}

func TestTopKHandler(t *testing.T) {
	s := testServer(t)
	proteins := s.sys.Proteins()

	t.Run("happy path GET", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodGet,
			"/topk?protein="+proteins[0]+"&k=3&trials=2000&seed=1", "")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		answers, ok := out["answers"].([]any)
		if !ok || len(answers) != 3 {
			t.Fatalf("want 3 answers, got %v", out["answers"])
		}
		first := answers[0].(map[string]any)
		for _, field := range []string{"kind", "label", "score", "lo", "hi", "trials"} {
			if _, ok := first[field]; !ok {
				t.Errorf("answer missing %q: %v", field, first)
			}
		}
		lo, hi, score := first["lo"].(float64), first["hi"].(float64), first["score"].(float64)
		if !(lo <= score && score <= hi) {
			t.Errorf("score %v outside its own bounds [%v, %v]", score, lo, hi)
		}
		if out["k"].(float64) != 3 {
			t.Errorf("k echoed as %v", out["k"])
		}
		if _, ok := out["pruned"]; !ok {
			t.Error("response missing prune telemetry")
		}
	})

	t.Run("happy path POST", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodPost, "/topk",
			`{"protein":"`+proteins[0]+`","k":2,"trials":2000,"seed":1}`)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		if answers := out["answers"].([]any); len(answers) != 2 {
			t.Fatalf("want 2 answers, got %d", len(answers))
		}
	})

	t.Run("worlds race", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodGet,
			"/topk?protein="+proteins[0]+"&k=3&trials=2000&seed=1&worlds=true", "")
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		answers, ok := out["answers"].([]any)
		if !ok || len(answers) != 3 {
			t.Fatalf("want 3 answers, got %v", out["answers"])
		}
		// Bit-parallel batches round to 64-world words.
		first := answers[0].(map[string]any)
		if trials := int64(first["trials"].(float64)); trials == 0 || trials%64 != 0 {
			t.Errorf("worlds race trials %d is not a positive multiple of 64", trials)
		}
	})

	t.Run("bad method", func(t *testing.T) {
		code, _ := do(t, s.handleTopK, http.MethodDelete, "/topk", "")
		if code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", code)
		}
	})

	t.Run("unknown protein", func(t *testing.T) {
		code, out := do(t, s.handleTopK, http.MethodGet, "/topk?protein=NOSUCH", "")
		if code != http.StatusNotFound {
			t.Fatalf("status %d, want 404 (%v)", code, out)
		}
		if out["error"] == "" {
			t.Error("missing error message")
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		code, _ := do(t, s.handleTopK, http.MethodPost, "/topk", `{"protein":`)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("missing protein", func(t *testing.T) {
		code, _ := do(t, s.handleTopK, http.MethodGet, "/topk", "")
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("bad k", func(t *testing.T) {
		code, _ := do(t, s.handleTopK, http.MethodGet, "/topk?protein="+proteins[0]+"&k=-2", "")
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})
}

func TestRankHandler(t *testing.T) {
	s := testServer(t)

	// Serialize a real query graph to feed /rank.
	ans, err := s.sys.Query(s.sys.Proteins()[0])
	if err != nil {
		t.Fatal(err)
	}
	graphJSON, err := ans.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("happy path", func(t *testing.T) {
		body := `{"graph":` + string(graphJSON) + `,"methods":["reliability","inedge"],"trials":1000,"seed":1}`
		code, out := do(t, s.handleRank, http.MethodPost, "/rank", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		rankings := out["rankings"].(map[string]any)
		if len(rankings) != 2 {
			t.Fatalf("want 2 methods, got %v", rankings)
		}
		if out["answers"].(float64) != float64(ans.Len()) {
			t.Errorf("answers %v, want %d", out["answers"], ans.Len())
		}
	})

	t.Run("bad method", func(t *testing.T) {
		code, _ := do(t, s.handleRank, http.MethodGet, "/rank", "")
		if code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", code)
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		code, _ := do(t, s.handleRank, http.MethodPost, "/rank", `{"graph":{`)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("missing graph", func(t *testing.T) {
		code, _ := do(t, s.handleRank, http.MethodPost, "/rank", `{"trials":10}`)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("unknown method name", func(t *testing.T) {
		body := `{"graph":` + string(graphJSON) + `,"methods":["nosuch"]}`
		code, _ := do(t, s.handleRank, http.MethodPost, "/rank", body)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422", code)
		}
	})
}

func TestQueryHandler(t *testing.T) {
	s := testServer(t)
	proteins := s.sys.Proteins()

	t.Run("happy path with topk option", func(t *testing.T) {
		body := `{"protein":"` + proteins[0] + `","methods":["reliability"],"trials":2000,"seed":1,"topk":5}`
		code, out := do(t, s.handleQuery, http.MethodPost, "/query", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		results := out["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("want 1 result, got %d", len(results))
		}
		res := results[0].(map[string]any)
		if errMsg, ok := res["error"]; ok && errMsg != "" {
			t.Fatalf("result error: %v", errMsg)
		}
		if _, ok := res["rankings"].(map[string]any)["reliability"]; !ok {
			t.Fatalf("missing reliability ranking: %v", res)
		}
	})

	t.Run("worlds option runs the bit-parallel estimator", func(t *testing.T) {
		body := `{"protein":"` + proteins[0] + `","methods":["reliability"],"trials":2000,"seed":1,"worlds":true}`
		code, out := do(t, s.handleQuery, http.MethodPost, "/query", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %v", code, out)
		}
		res := out["results"].([]any)[0].(map[string]any)
		if errMsg, ok := res["error"]; ok && errMsg != "" {
			t.Fatalf("result error: %v", errMsg)
		}
		ranked, ok := res["rankings"].(map[string]any)["reliability"].([]any)
		if !ok || len(ranked) == 0 {
			t.Fatalf("missing reliability ranking: %v", res)
		}
		for _, a := range ranked {
			score := a.(map[string]any)["score"].(float64)
			if score < 0 || score > 1 {
				t.Fatalf("worlds score %v outside [0,1]", score)
			}
		}
		// GET parses worlds= like the other booleans.
		code, _ = do(t, s.handleQuery, http.MethodGet,
			"/query?protein="+proteins[0]+"&methods=reliability&trials=2000&worlds=true", "")
		if code != http.StatusOK {
			t.Fatalf("GET worlds status %d", code)
		}
		code, _ = do(t, s.handleQuery, http.MethodGet,
			"/query?protein="+proteins[0]+"&worlds=banana", "")
		if code != http.StatusBadRequest {
			t.Fatalf("bad worlds value: status %d, want 400", code)
		}
	})

	t.Run("unknown protein is a per-result error", func(t *testing.T) {
		code, out := do(t, s.handleQuery, http.MethodPost, "/query", `{"protein":"NOSUCH"}`)
		if code != http.StatusOK {
			t.Fatalf("status %d (batch errors are per-result): %v", code, out)
		}
		res := out["results"].([]any)[0].(map[string]any)
		if res["error"] == "" {
			t.Error("missing per-result error")
		}
	})

	t.Run("bad method", func(t *testing.T) {
		code, _ := do(t, s.handleQuery, http.MethodDelete, "/query", "")
		if code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", code)
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		code, _ := do(t, s.handleQuery, http.MethodPost, "/query", `not json`)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("missing protein", func(t *testing.T) {
		code, _ := do(t, s.handleQuery, http.MethodPost, "/query", `{"methods":["inedge"]}`)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})
}
