package biorank

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"biorank/internal/wal"
)

// corruptFirstWALRecord flips one payload bit of the first record in the
// directory's first WAL segment — mid-log damage, not a torn tail.
func corruptFirstWALRecord(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (%v)", dir, err)
	}
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 10 {
		t.Fatalf("segment too short: %d bytes", len(buf))
	}
	buf[9] ^= 0x04 // second payload byte of record 1
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// durableSystem builds a demo system in durable live mode over dir.
func durableSystem(t *testing.T, seed uint64, dir string, cfg DurabilityConfig) (*System, DurabilityStats) {
	t.Helper()
	s, err := NewDemoSystem(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dir = dir
	st, err := s.EnableLiveDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// TestDurableRecoveryScoresBitIdentical is the facade end of the
// tentpole: ingest through a durable system, restart it over the same
// directory, and require the recovered system's version, epochs and
// Monte Carlo scores to be bit-identical to the pre-restart ones.
func TestDurableRecoveryScoresBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s1, st := durableSystem(t, 5, dir, DurabilityConfig{Fsync: "always"})
	if st.Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	if st.Checkpoints != 1 {
		t.Fatalf("bootstrap wrote %d checkpoints, want 1", st.Checkpoints)
	}
	proteins := s1.Proteins()
	pA := proteins[0]
	accs := s1.Accessions(pA)
	if _, err := s1.Ingest(setProteinP(accs[0], 0.42)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Ingest(IngestDelta{Source: "blast", Ops: []IngestOp{
		{Op: "upsert-node", Node: IngestRef{Kind: "EntrezProtein", Label: "NP_NEW1"}, P: 0.7},
	}}); err != nil {
		t.Fatal(err)
	}
	live1, ok := s1.LiveStats()
	if !ok {
		t.Fatal("not live")
	}
	opts := Options{Trials: 300, Seed: 9}
	want := map[string]map[string]float64{}
	for _, p := range proteins[:3] {
		ans, err := s1.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := ans.Rank(Reliability, opts)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]float64{}
		for _, a := range ranked {
			m[a.Label] = a.Score
		}
		want[p] = m
	}
	s1.Close() // syncs and closes the WAL

	s2, st2 := durableSystem(t, 5, dir, DurabilityConfig{Fsync: "always"})
	defer s2.Close()
	if !s2.LiveDurable() {
		t.Fatal("recovered system not live-durable")
	}
	if !st2.Recovered || st2.Recovery.Replayed != 2 {
		t.Fatalf("recovery stats %+v, want Recovered with 2 replayed", st2.Recovery)
	}
	live2, _ := s2.LiveStats()
	if live2.Version != live1.Version || live2.Deltas != live1.Deltas {
		t.Fatalf("recovered store at version %d/%d deltas, want %d/%d",
			live2.Version, live2.Deltas, live1.Version, live1.Deltas)
	}
	for src, ep := range live1.Epochs {
		if live2.Epochs[src] != ep {
			t.Fatalf("epoch[%s] = %d, want %d", src, live2.Epochs[src], ep)
		}
	}
	for _, p := range proteins[:3] {
		ans, err := s2.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := ans.Rank(Reliability, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) != len(want[p]) {
			t.Fatalf("%s: %d answers after recovery, want %d", p, len(ranked), len(want[p]))
		}
		for _, a := range ranked {
			if w, ok := want[p][a.Label]; !ok || math.Float64bits(a.Score) != math.Float64bits(w) {
				t.Fatalf("%s/%s: score %v after recovery, want %v", p, a.Label, a.Score, w)
			}
		}
	}
}

// TestDurableIngestSurvivesWithoutClose pins the fsync=always contract:
// every acknowledged ingest is recoverable even when the process never
// gets to sync-on-close (the WAL is simply abandoned, as SIGKILL would).
func TestDurableIngestSurvivesWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableSystem(t, 11, dir, DurabilityConfig{Fsync: "always"})
	accs := s1.Accessions(s1.Proteins()[0])
	var lastVersion uint64
	for i := 0; i < 5; i++ {
		res, err := s1.Ingest(setProteinP(accs[0], 0.3+float64(i)*0.1))
		if err != nil {
			t.Fatal(err)
		}
		lastVersion = res.Version
	}
	// No Close: the only durability is the per-append fsync.

	s2, st := durableSystem(t, 11, dir, DurabilityConfig{Fsync: "always"})
	defer s2.Close()
	live, _ := s2.LiveStats()
	if !st.Recovered || live.Version < lastVersion {
		t.Fatalf("recovered version %d < acknowledged %d (stats %+v)", live.Version, lastVersion, st.Recovery)
	}
	s1.Close()
}

// TestAutoCheckpoint pins CheckpointEvery: after enough deltas the
// facade checkpoints on its own and prunes covered segments, and the
// next recovery starts from the new checkpoint instead of replaying the
// whole history.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableSystem(t, 3, dir, DurabilityConfig{
		Fsync:           "always",
		CheckpointEvery: 3,
		SegmentBytes:    1, // rotate every record so pruning has prey
	})
	accs := s1.Accessions(s1.Proteins()[0])
	for i := 0; i < 7; i++ {
		if _, err := s1.Ingest(setProteinP(accs[0], 0.2+float64(i)*0.1)); err != nil {
			t.Fatal(err)
		}
	}
	ds, ok := s1.DurabilityStats()
	if !ok {
		t.Fatal("no durability stats")
	}
	if ds.Checkpoints < 2 || ds.LastCheckpointSeq < 3 {
		t.Fatalf("auto-checkpoint did not engage: %+v", ds)
	}
	s1.Close()

	s2, st := durableSystem(t, 3, dir, DurabilityConfig{Fsync: "always"})
	defer s2.Close()
	if !st.Recovered || st.Recovery.CheckpointSeq < 3 {
		t.Fatalf("recovery used checkpoint seq %d, want >= 3", st.Recovery.CheckpointSeq)
	}
	if st.Recovery.Replayed > 4 {
		t.Fatalf("replayed %d records despite checkpoint at %d", st.Recovery.Replayed, st.Recovery.CheckpointSeq)
	}
	live, _ := s2.LiveStats()
	if live.Deltas != 7 {
		t.Fatalf("recovered Deltas = %d, want 7", live.Deltas)
	}
}

// TestManualCheckpointAndStats exercises Checkpoint() and the stats
// surface directly.
func TestManualCheckpointAndStats(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableSystem(t, 2, dir, DurabilityConfig{Fsync: "never"})
	defer s.Close()
	accs := s.Accessions(s.Proteins()[0])
	if _, err := s.Ingest(setProteinP(accs[0], 0.5)); err != nil {
		t.Fatal(err)
	}
	seq, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("Checkpoint at seq %d, want 1", seq)
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	ds, ok := s.DurabilityStats()
	if !ok || ds.Checkpoints != 2 || ds.LastCheckpointSeq != 1 || ds.Log.Appends != 1 {
		t.Fatalf("stats %+v", ds)
	}
}

// TestDurableRefusesCorruptDir pins the loud-failure half of the
// contract at the facade level: a corrupted mid-log record refuses to
// boot rather than serving silently wrong state.
func TestDurableRefusesCorruptDir(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableSystem(t, 4, dir, DurabilityConfig{Fsync: "always"})
	accs := s1.Accessions(s1.Proteins()[0])
	for i := 0; i < 3; i++ {
		if _, err := s1.Ingest(setProteinP(accs[0], 0.3+float64(i)*0.2)); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()
	corruptFirstWALRecord(t, dir)

	s2, err := NewDemoSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnableLiveDurable(DurabilityConfig{Dir: dir, Fsync: "always"}); err == nil {
		t.Fatal("EnableLiveDurable accepted a corrupt mid-log record")
	} else {
		var ce *wal.CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *wal.CorruptionError", err)
		}
	}
}
