// All sources: integrate the full set of eleven databases from the
// paper's Section 2 table — curated gene databases (EntrezGene,
// UniProt), sequence similarity (NCBIBlast over EntrezProtein), profile
// matchers (Pfam, TIGRFAM, PIRSF, CDD, SuperFamily), annotations (AmiGO)
// and structures (PDB) — and watch converging evidence from independent
// sources push the right functions to the top.
//
//	go run ./examples/allsources
package main

import (
	"fmt"
	"log"

	"biorank"
)

func main() {
	sys, err := biorank.NewFullSystem(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated sources (%d):\n", len(sys.Sources()))
	for _, s := range sys.Sources() {
		fmt.Printf("  - %s\n", s)
	}
	fmt.Println()

	for _, protein := range sys.Proteins() {
		answers, err := sys.Query(protein)
		if err != nil {
			log.Fatal(err)
		}
		golden := map[string]bool{}
		for _, f := range sys.GoldenFunctions(protein) {
			golden[f] = true
		}
		ranked, err := answers.Rank(biorank.Reliability, biorank.Options{Trials: 5000, Seed: 1, Reduce: true})
		if err != nil {
			log.Fatal(err)
		}
		nodes, edges := answers.GraphSize()
		fmt.Printf("%s: %d candidates over %d nodes / %d edges\n", protein, answers.Len(), nodes, edges)
		for i, a := range ranked {
			if i >= 6 {
				break
			}
			mark := " "
			if golden[a.Label] {
				mark = "*"
			}
			fmt.Printf("  %s #%d %-14s r=%.3f\n", mark, i+1, a.Label, a.Score)
		}
		ap := biorank.AveragePrecision(ranked, func(l string) bool { return golden[l] })
		fmt.Printf("  AP vs golden standard: %.2f (random %.2f)\n\n",
			ap, biorank.RandomAP(len(golden), answers.Len()))
	}
}
