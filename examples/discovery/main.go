// Discovery: the paper's headline use case. A researcher queries a
// well-studied protein hoping to surface functions that are true but not
// yet recorded in curated databases (scenario 2). Probabilistic ranking
// surfaces them; deterministic redundancy counting buries them.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"biorank"
)

func main() {
	sys, err := biorank.NewDemoSystem(1)
	if err != nil {
		log.Fatal(err)
	}

	// The three proteins for which the paper found recently published,
	// not-yet-curated functions (its Table 2).
	for _, protein := range []string{"ABCC8", "CFTR", "EYA1"} {
		emerging := map[string]bool{}
		for _, f := range sys.EmergingFunctions(protein) {
			emerging[f] = true
		}
		golden := map[string]bool{}
		for _, f := range sys.GoldenFunctions(protein) {
			golden[f] = true
		}

		answers, err := sys.Query(protein)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d candidate functions, %d newly published ones hidden among them\n",
			protein, answers.Len(), len(emerging))

		for _, m := range []biorank.Method{biorank.Reliability, biorank.Diffusion, biorank.InEdge} {
			scored, err := answers.Rank(m, biorank.Options{Trials: 10000, Seed: 3, Reduce: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s", m)
			for _, a := range scored {
				if emerging[a.Label] {
					if a.RankLo == a.RankHi {
						fmt.Printf("  %s@%d", a.Label, a.RankLo)
					} else {
						fmt.Printf("  %s@%d-%d", a.Label, a.RankLo, a.RankHi)
					}
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("A new function rests on a single strong evidence path: the probabilistic")
	fmt.Println("methods rank it near the known functions, while InEdge ties it with the")
	fmt.Println("weak noise (wide rank intervals) — the paper's case for keeping probabilities.")
}
