// Sensitivity: the input probabilities of BioRank come from domain
// experts and are necessarily subjective. This example perturbs every
// probability in a query with log-odds Gaussian noise (the paper's
// Section 4 method) and shows that the ranking quality barely moves —
// the robustness result that justifies expert-estimated probabilities.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"biorank"
	"biorank/internal/experiments"
)

func main() {
	// The experiments package exposes the exact multi-way sensitivity
	// analysis of the paper; here we run one panel (scenario 1,
	// propagation) with a reduced number of repetitions.
	opts := experiments.QuickOptions()
	opts.Repeats = 15
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := suite.Figure6Panel(1, "propagation")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Perturbing every node and edge probability with log-odds noise")
	fmt.Println("(scenario 1, propagation ranking, AP over 20 proteins):")
	fmt.Println()
	for _, c := range panel.Cells {
		name := fmt.Sprintf("sigma %.1f", c.Sigma)
		if c.Sigma == 0 {
			name = "default  "
		}
		bar := ""
		for i := 0; i < int(c.AP.Mean*50); i++ {
			bar += "#"
		}
		fmt.Printf("  %s  AP %.3f  %s\n", name, c.AP.Mean, bar)
	}
	fmt.Printf("  random     AP %.3f\n\n", panel.RandomAP)
	fmt.Println("Noise of sigma 0.5-1 on the log-odds scale (roughly: experts disagreeing")
	fmt.Println("by a factor of e on every odds estimate) leaves the ranking quality intact.")
	_ = biorank.Methods() // the facade is the supported surface for applications
}
