// Star schema: Section 5 of the paper discusses divergent star schemas —
// integration scenarios where entries from different databases cannot be
// linked together, so every piece of evidence reaches an answer through
// exactly one private path. InEdge and PathCount then see every answer
// identically (all ties); only the strength of each individual path can
// rank results.
//
//	go run ./examples/starschema
package main

import (
	"fmt"
	"log"

	"biorank"
)

func main() {
	g := biorank.NewGraph()
	q := g.AddRecord("Protein", "YFG1", 1)

	// Five sources, each reporting one candidate function through its
	// own unlinkable path with its own confidence.
	type claim struct {
		source   string
		function string
		strength float64
	}
	claims := []claim{
		{"SourceA", "GO:0000001", 0.95},
		{"SourceB", "GO:0000002", 0.70},
		{"SourceC", "GO:0000003", 0.45},
		{"SourceD", "GO:0000004", 0.20},
		{"SourceE", "GO:0000005", 0.05},
	}
	for _, c := range claims {
		rec := g.AddRecord(c.source, c.source+"-hit", 1)
		fn := g.AddRecord("Function", c.function, 1)
		g.AddLink(q, rec, c.strength)
		g.AddLink(rec, fn, 1)
	}

	answers, err := g.Explore("YFG1", "Protein", "Function")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Divergent star schema: one private evidence path per answer.")
	fmt.Println()
	for _, m := range []biorank.Method{biorank.Reliability, biorank.InEdge, biorank.PathCount} {
		scored, err := answers.Rank(m, biorank.Options{Exact: m == biorank.Reliability})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", m)
		for _, a := range scored {
			rank := fmt.Sprintf("%d", a.RankLo)
			if a.RankHi != a.RankLo {
				rank = fmt.Sprintf("%d-%d", a.RankLo, a.RankHi)
			}
			fmt.Printf("  rank %-5s %s  score %.2f\n", rank, a.Label, a.Score)
		}
		fmt.Println()
	}
	fmt.Println("The deterministic measures tie every answer at rank 1-5: with no")
	fmt.Println("redundancy to count, only probabilistic evidence can rank results.")
}
