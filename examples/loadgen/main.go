// Loadgen drives the batch ranking engine the way a busy deployment
// would: a closed-loop set of clients firing batches of multi-method
// queries at one shared System, measuring throughput and the effect of
// the result cache.
//
//	go run ./examples/loadgen -clients 8 -rounds 5 -trials 500
//
// With -addr it instead targets a running biorankd over HTTP:
//
//	go run ./cmd/biorankd &
//	go run ./examples/loadgen -addr http://localhost:8080 -clients 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"biorank"
)

func main() {
	var (
		clients = flag.Int("clients", 8, "concurrent client goroutines")
		rounds  = flag.Int("rounds", 5, "batches each client issues")
		trials  = flag.Int("trials", 500, "Monte Carlo trials per reliability query")
		seed    = flag.Uint64("seed", 1, "world and simulation seed")
		addr    = flag.String("addr", "", "biorankd base URL; empty = in-process engine")
	)
	flag.Parse()

	sys, err := biorank.NewDemoSystem(*seed)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	proteins := sys.Proteins()
	opts := biorank.Options{Trials: *trials, Seed: *seed, Reduce: true}

	var queries, methodsScored, errs atomic.Int64
	run := func(client int) {
		for round := 0; round < *rounds; round++ {
			// Each client walks the protein list from its own offset so
			// early rounds mix cache misses and hits realistically.
			batch := make([]biorank.BatchRequest, 0, 4)
			for k := 0; k < 4; k++ {
				p := proteins[(client*4+round+k)%len(proteins)]
				batch = append(batch, biorank.BatchRequest{Protein: p, Options: opts})
			}
			if *addr != "" {
				n, m, e := httpBatch(*addr, batch, opts)
				queries.Add(n)
				methodsScored.Add(m)
				errs.Add(e)
				continue
			}
			for _, res := range sys.QueryBatch(batch) {
				if res.Err != nil {
					errs.Add(1)
					continue
				}
				queries.Add(1)
				methodsScored.Add(int64(len(res.Rankings)))
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			run(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("loadgen: %d clients x %d rounds against %s\n",
		*clients, *rounds, target(*addr))
	fmt.Printf("  %d queries ranked (%d method evaluations, %d errors) in %v\n",
		queries.Load(), methodsScored.Load(), errs.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("  %.1f queries/sec, %.1f method evaluations/sec\n",
		float64(queries.Load())/elapsed.Seconds(),
		float64(methodsScored.Load())/elapsed.Seconds())
	if *addr == "" {
		fmt.Printf("  cache: %+v\n", sys.CacheStats())
	}
}

func target(addr string) string {
	if addr == "" {
		return "in-process engine"
	}
	return addr
}

// httpBatch issues one /query batch against a biorankd instance and
// returns (queries ok, method evaluations, errors).
func httpBatch(base string, batch []biorank.BatchRequest, opts biorank.Options) (int64, int64, int64) {
	type wireReq struct {
		Protein string `json:"protein"`
		Trials  int    `json:"trials"`
		Seed    uint64 `json:"seed"`
		Reduce  bool   `json:"reduce"`
	}
	reqs := make([]wireReq, len(batch))
	for i, b := range batch {
		reqs[i] = wireReq{Protein: b.Protein, Trials: opts.Trials, Seed: opts.Seed, Reduce: opts.Reduce}
	}
	body, err := json.Marshal(map[string]any{"requests": reqs})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, int64(len(batch))
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Error    string                       `json:"error"`
			Rankings map[string][]json.RawMessage `json:"rankings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, int64(len(batch))
	}
	var ok, methods, errs int64
	for _, r := range out.Results {
		if r.Error != "" {
			errs++
			continue
		}
		ok++
		methods += int64(len(r.Rankings))
	}
	return ok, methods, errs
}
