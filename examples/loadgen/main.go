// Loadgen drives the batch ranking engine the way a busy deployment
// would: a closed-loop set of clients firing batches of multi-method
// queries at one shared System, measuring throughput, per-batch latency
// percentiles (p50/p95/p99) and the effect of the result and plan
// caches. By default it runs the same workload twice — once with the
// fixed Theorem 3.1 trial budget and once with adaptive early-stopping
// Monte Carlo — so the two modes can be compared side by side.
//
//	go run ./examples/loadgen -clients 8 -rounds 5 -trials 500
//	go run ./examples/loadgen -mode adaptive
//	go run ./examples/loadgen -mode topk -k 5   # successive-elimination racer
//	go run ./examples/loadgen -mode worlds      # bit-parallel Monte Carlo
//	go run ./examples/loadgen -mode planner     # hybrid exact/MC planner
//	go run ./examples/loadgen -mode all         # fixed, adaptive, topk, worlds, planner
//
// Modes with a fixed trial budget (fixed, worlds) additionally report
// simulated trials/sec, so the bit-parallel kernel's speedup is visible
// end to end rather than only in microbenchmarks.
//
// With -addr it instead targets a running biorankd over HTTP:
//
//	go run ./cmd/biorankd &
//	go run ./examples/loadgen -addr http://localhost:8080 -clients 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"biorank"
	"biorank/internal/kernel"
	"biorank/internal/rank"
)

func main() {
	var (
		clients = flag.Int("clients", 8, "concurrent client goroutines")
		rounds  = flag.Int("rounds", 5, "batches each client issues")
		trials  = flag.Int("trials", 500, "Monte Carlo trials per reliability query (cap in adaptive mode)")
		seed    = flag.Uint64("seed", 1, "world and simulation seed")
		addr    = flag.String("addr", "", "biorankd base URL; empty = in-process engine")
		mode    = flag.String("mode", "both", "reliability estimator: fixed|adaptive|topk|worlds|planner|both|all")
		topk    = flag.Int("k", 5, "k for -mode topk (certified top-k racing)")
	)
	flag.Parse()

	sys, err := biorank.NewDemoSystem(*seed)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var modes []string
	switch *mode {
	case "fixed":
		modes = []string{"fixed"}
	case "adaptive":
		modes = []string{"adaptive"}
	case "topk":
		modes = []string{"topk"}
	case "worlds":
		modes = []string{"worlds"}
	case "planner":
		modes = []string{"planner"}
	case "both":
		modes = []string{"fixed", "adaptive"}
	case "all":
		modes = []string{"fixed", "adaptive", "topk", "worlds", "planner"}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -mode %q (want fixed|adaptive|topk|worlds|planner|both|all)\n", *mode)
		os.Exit(2)
	}

	for _, m := range modes {
		opts := biorank.Options{Trials: *trials, Seed: *seed, Reduce: true, Adaptive: m == "adaptive"}
		switch m {
		case "adaptive":
			// The fixed-mode trial count is the adaptive cap; give the
			// stopping rule room above the default batch size.
			opts.Trials = 10 * *trials
		case "topk":
			// Same cap story for the racer; only reliability is raced, so
			// restrict the batch to the method the mode is about.
			opts.Trials = 10 * *trials
			opts.TopK = *topk
		case "worlds":
			// Same fixed budget as the fixed pass, bit-parallel (256
			// worlds per block since the block kernel): the two passes
			// answer "what does the worlds kernel buy end to end".
			opts.Worlds = true
		case "planner":
			// Same race cap as the topk/adaptive passes; answers the probe
			// solves exactly never hit the simulation budget at all.
			opts.Trials = 10 * *trials
			opts.Planner = true
		}
		run(sys, *clients, *rounds, *addr, m, opts)
	}
}

// run fires the closed-loop workload once and reports its metrics.
func run(sys *biorank.System, clients, rounds int, addr, mode string, opts biorank.Options) {
	proteins := sys.Proteins()
	// The racer and the planner only change reliability, so those passes
	// measure that method alone; the other modes rank all five semantics.
	var methods []biorank.Method
	if mode == "topk" || mode == "planner" {
		methods = []biorank.Method{biorank.Reliability}
	}
	// Modes with an a-priori budget simulate a known number of trials
	// per reliability query: the flag value for the scalar kernel, the
	// same rounded up to whole 64-world words for the bit-parallel one.
	relTrials := 0
	if mode == "fixed" || mode == "worlds" {
		relTrials = opts.Trials
		if relTrials <= 0 {
			relTrials = rank.DefaultTrials
		}
		if mode == "worlds" {
			relTrials = kernel.WorldWords(relTrials) * kernel.WordSize
		}
	}
	var queries, methodsScored, errs atomic.Int64
	latencies := make([][]time.Duration, clients)

	work := func(client int) {
		lats := make([]time.Duration, 0, rounds)
		for round := 0; round < rounds; round++ {
			// Each client walks the protein list from its own offset so
			// early rounds mix cache misses and hits realistically.
			batch := make([]biorank.BatchRequest, 0, 4)
			for k := 0; k < 4; k++ {
				p := proteins[(client*4+round+k)%len(proteins)]
				batch = append(batch, biorank.BatchRequest{Protein: p, Methods: methods, Options: opts})
			}
			start := time.Now()
			if addr != "" {
				n, m, e := httpBatch(addr, batch, opts)
				queries.Add(n)
				methodsScored.Add(m)
				errs.Add(e)
			} else {
				for _, res := range sys.QueryBatch(batch) {
					if res.Err != nil {
						errs.Add(1)
						continue
					}
					queries.Add(1)
					methodsScored.Add(int64(len(res.Rankings)))
				}
			}
			lats = append(lats, time.Since(start))
		}
		latencies[client] = lats
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			work(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Printf("loadgen[%s]: %d clients x %d rounds against %s\n",
		mode, clients, rounds, target(addr))
	fmt.Printf("  %d queries ranked (%d method evaluations, %d errors) in %v\n",
		queries.Load(), methodsScored.Load(), errs.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.1f queries/sec, %.1f method evaluations/sec\n",
		float64(queries.Load())/elapsed.Seconds(),
		float64(methodsScored.Load())/elapsed.Seconds())
	fmt.Printf("  batch latency: p50=%v p95=%v p99=%v max=%v (n=%d)\n",
		percentile(all, 0.50).Round(time.Microsecond),
		percentile(all, 0.95).Round(time.Microsecond),
		percentile(all, 0.99).Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond), len(all))
	if relTrials > 0 {
		fmt.Printf("  simulation: %d trials/query, %.0f trials/sec\n",
			relTrials, float64(queries.Load()*int64(relTrials))/elapsed.Seconds())
	}
	if addr == "" {
		fmt.Printf("  result cache: %+v\n", sys.CacheStats())
		fmt.Printf("  plan cache:   %+v\n", sys.PlanStats())
	}
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func target(addr string) string {
	if addr == "" {
		return "in-process engine"
	}
	return addr
}

// httpBatch issues one /query batch against a biorankd instance and
// returns (queries ok, method evaluations, errors).
func httpBatch(base string, batch []biorank.BatchRequest, opts biorank.Options) (int64, int64, int64) {
	type wireReq struct {
		Protein  string   `json:"protein"`
		Methods  []string `json:"methods,omitempty"`
		Trials   int      `json:"trials"`
		Seed     uint64   `json:"seed"`
		Reduce   bool     `json:"reduce"`
		Adaptive bool     `json:"adaptive"`
		TopK     int      `json:"topk,omitempty"`
		Worlds   bool     `json:"worlds,omitempty"`
		Planner  bool     `json:"planner,omitempty"`
	}
	reqs := make([]wireReq, len(batch))
	for i, b := range batch {
		methods := make([]string, len(b.Methods))
		for j, m := range b.Methods {
			methods[j] = string(m)
		}
		reqs[i] = wireReq{Protein: b.Protein, Methods: methods, Trials: opts.Trials, Seed: opts.Seed, Reduce: opts.Reduce, Adaptive: opts.Adaptive, TopK: opts.TopK, Worlds: opts.Worlds, Planner: opts.Planner}
	}
	body, err := json.Marshal(map[string]any{"requests": reqs})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, int64(len(batch))
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Error    string                       `json:"error"`
			Rankings map[string][]json.RawMessage `json:"rankings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, int64(len(batch))
	}
	var ok, methods, errs int64
	for _, r := range out.Results {
		if r.Error != "" {
			errs++
			continue
		}
		ok++
		methods += int64(len(r.Rankings))
	}
	return ok, methods, errs
}
