// Loadgen drives the batch ranking engine the way a busy deployment
// would: a closed-loop set of clients firing batches of multi-method
// queries at one shared System, measuring throughput, per-batch latency
// percentiles (p50/p95/p99) and the effect of the result and plan
// caches. By default it runs the same workload twice — once with the
// fixed Theorem 3.1 trial budget and once with adaptive early-stopping
// Monte Carlo — so the two modes can be compared side by side.
//
//	go run ./examples/loadgen -clients 8 -rounds 5 -trials 500
//	go run ./examples/loadgen -mode adaptive
//	go run ./examples/loadgen -mode topk -k 5   # successive-elimination racer
//	go run ./examples/loadgen -mode worlds      # bit-parallel Monte Carlo
//	go run ./examples/loadgen -mode planner     # hybrid exact/MC planner
//	go run ./examples/loadgen -mode all         # fixed, adaptive, topk, worlds, planner
//
// Modes with a fixed trial budget (fixed, worlds) additionally report
// simulated trials/sec, so the bit-parallel kernel's speedup is visible
// end to end rather than only in microbenchmarks.
//
// Every pass reports its shed rate (requests rejected by admission
// control, zero unless the target enforces capacity) and truncated
// rate (rankings cut short by a deadline). -request-timeout puts a
// per-request deadline on the workload; overloaded or slow targets
// then degrade into truncated partial rankings instead of timing out.
//
// -mode overload is the failure-drill: it caps the in-process engine
// at -max-inflight/-max-queue (tiny by default), fires single-query
// batches from every client at once, and reports the shed rate next
// to the served requests' latency percentiles — demonstrating that
// load shedding keeps served latency bounded instead of letting the
// queue grow without limit.
//
//	go run ./examples/loadgen -mode overload -clients 32 -rounds 20
//
// -mode churn is the incremental-integration drill: the system switches
// to live mode (one mutable union graph), clients mix reads with
// probability-revision deltas at -write-rate, and the same workload runs
// twice — once with scoped invalidation (a delta drops only the queries
// that can reach an affected record; untouched plans are patched, not
// recompiled) and once with the legacy version-nuke baseline (any
// mutation strands every cache entry). The two passes print read-latency
// percentiles and cache hit rates side by side; in-process only. A
// durability pass follows: the same write stream replayed through a
// WAL-backed live store under each fsync policy (plus a no-WAL
// baseline), reporting ingest p50/p99/max per policy — the measured
// price of -wal-dir at each durability level.
//
//	go run ./examples/loadgen -mode churn -clients 8 -rounds 40 -write-rate 0.2
//
// With -addr it instead targets a running biorankd over HTTP (start it
// with -max-queue/-max-inflight to see shedding, -default-timeout to
// see truncation):
//
//	go run ./cmd/biorankd &
//	go run ./examples/loadgen -addr http://localhost:8080 -clients 8
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"biorank"
	"biorank/internal/kernel"
	"biorank/internal/rank"
)

func main() {
	var (
		clients     = flag.Int("clients", 8, "concurrent client goroutines")
		rounds      = flag.Int("rounds", 5, "batches each client issues")
		trials      = flag.Int("trials", 500, "Monte Carlo trials per reliability query (cap in adaptive mode)")
		seed        = flag.Uint64("seed", 1, "world and simulation seed")
		addr        = flag.String("addr", "", "biorankd base URL; empty = in-process engine")
		mode        = flag.String("mode", "both", "reliability estimator: fixed|adaptive|topk|worlds|planner|both|all|overload")
		topk        = flag.Int("k", 5, "k for -mode topk (certified top-k racing)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request ranking deadline (0 = none); expiry truncates, not fails")
		maxInFlight = flag.Int("max-inflight", 2, "engine in-flight cap for -mode overload (in-process only)")
		maxQueue    = flag.Int("max-queue", 2, "engine queue cap for -mode overload (in-process only)")
		writeRate   = flag.Float64("write-rate", 0.2, "fraction of operations that are ingest deltas in -mode churn")
	)
	flag.Parse()

	if *mode == "churn" {
		if *addr != "" {
			fmt.Fprintln(os.Stderr, "loadgen: -mode churn runs in-process only")
			os.Exit(2)
		}
		for _, pass := range []struct {
			name string
			inv  biorank.InvalidationMode
		}{
			{"scoped", biorank.InvalidateScoped},
			{"version-nuke", biorank.InvalidateVersion},
		} {
			runChurn(pass.name, pass.inv, *clients, *rounds, *trials, *seed, *writeRate)
		}
		runChurnDurability(*clients, *rounds, *seed)
		return
	}

	sys, err := biorank.NewDemoSystem(*seed)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var modes []string
	switch *mode {
	case "fixed":
		modes = []string{"fixed"}
	case "adaptive":
		modes = []string{"adaptive"}
	case "topk":
		modes = []string{"topk"}
	case "worlds":
		modes = []string{"worlds"}
	case "planner":
		modes = []string{"planner"}
	case "both":
		modes = []string{"fixed", "adaptive"}
	case "all":
		modes = []string{"fixed", "adaptive", "topk", "worlds", "planner"}
	case "overload":
		modes = []string{"overload"}
		if *addr == "" {
			// Cap the engine so the drill actually sheds; must happen
			// before the first batch lazily starts it.
			if err := sys.ConfigureEngine(biorank.EngineConfig{MaxInFlight: *maxInFlight, MaxQueue: *maxQueue}); err != nil {
				log.Fatal(err)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -mode %q (want fixed|adaptive|topk|worlds|planner|both|all|overload|churn)\n", *mode)
		os.Exit(2)
	}

	for _, m := range modes {
		opts := biorank.Options{Trials: *trials, Seed: *seed, Reduce: true, Adaptive: m == "adaptive"}
		switch m {
		case "adaptive":
			// The fixed-mode trial count is the adaptive cap; give the
			// stopping rule room above the default batch size.
			opts.Trials = 10 * *trials
		case "topk":
			// Same cap story for the racer; only reliability is raced, so
			// restrict the batch to the method the mode is about.
			opts.Trials = 10 * *trials
			opts.TopK = *topk
		case "worlds":
			// Same fixed budget as the fixed pass, bit-parallel (256
			// worlds per block since the block kernel): the two passes
			// answer "what does the worlds kernel buy end to end".
			opts.Worlds = true
		case "planner":
			// Same race cap as the topk/adaptive passes; answers the probe
			// solves exactly never hit the simulation budget at all.
			opts.Trials = 10 * *trials
			opts.Planner = true
		}
		run(sys, *clients, *rounds, *addr, m, opts, *reqTimeout)
	}
}

// run fires the closed-loop workload once and reports its metrics.
func run(sys *biorank.System, clients, rounds int, addr, mode string, opts biorank.Options, reqTimeout time.Duration) {
	proteins := sys.Proteins()
	// The racer and the planner only change reliability, so those passes
	// measure that method alone; the other modes rank all five semantics.
	// The overload drill also sticks to one method: the point is the
	// admission behavior, not the ranking breadth.
	var methods []biorank.Method
	if mode == "topk" || mode == "planner" || mode == "overload" {
		methods = []biorank.Method{biorank.Reliability}
	}
	// Single-query batches keep the overload drill's shed accounting
	// per-request; the throughput modes batch four queries like a real
	// multi-query client.
	batchSize := 4
	if mode == "overload" {
		batchSize = 1
	}
	// Modes with an a-priori budget simulate a known number of trials
	// per reliability query: the flag value for the scalar kernel, the
	// same rounded up to whole 64-world words for the bit-parallel one.
	relTrials := 0
	if mode == "fixed" || mode == "worlds" {
		relTrials = opts.Trials
		if relTrials <= 0 {
			relTrials = rank.DefaultTrials
		}
		if mode == "worlds" {
			relTrials = kernel.WorldWords(relTrials) * kernel.WordSize
		}
	}
	var queries, methodsScored, errs, shed, truncated atomic.Int64
	latencies := make([][]time.Duration, clients)
	servedLatencies := make([][]time.Duration, clients)

	work := func(client int) {
		lats := make([]time.Duration, 0, rounds)
		served := make([]time.Duration, 0, rounds)
		for round := 0; round < rounds; round++ {
			// Each client walks the protein list from its own offset so
			// early rounds mix cache misses and hits realistically.
			batch := make([]biorank.BatchRequest, 0, batchSize)
			for k := 0; k < batchSize; k++ {
				p := proteins[(client*4+round+k)%len(proteins)]
				batch = append(batch, biorank.BatchRequest{Protein: p, Methods: methods, Options: opts, Timeout: reqTimeout})
			}
			start := time.Now()
			batchShed := int64(0)
			if addr != "" {
				st := httpBatch(addr, batch, opts, reqTimeout)
				queries.Add(st.ok)
				methodsScored.Add(st.methods)
				errs.Add(st.errs)
				shed.Add(st.shed)
				truncated.Add(st.truncated)
				batchShed = st.shed
			} else {
				for _, res := range sys.QueryBatch(batch) {
					if res.Err != nil {
						if errors.Is(res.Err, biorank.ErrOverloaded) {
							shed.Add(1)
							batchShed++
						} else {
							errs.Add(1)
						}
						continue
					}
					queries.Add(1)
					methodsScored.Add(int64(len(res.Rankings)))
					for _, tr := range res.Truncated {
						if tr {
							truncated.Add(1)
							break
						}
					}
				}
			}
			lat := time.Since(start)
			lats = append(lats, lat)
			if batchShed == 0 {
				served = append(served, lat)
			}
		}
		latencies[client] = lats
		servedLatencies[client] = served
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			work(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, servedAll []time.Duration
	for c := range latencies {
		all = append(all, latencies[c]...)
		servedAll = append(servedAll, servedLatencies[c]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(servedAll, func(i, j int) bool { return servedAll[i] < servedAll[j] })

	attempted := queries.Load() + errs.Load() + shed.Load()
	fmt.Printf("loadgen[%s]: %d clients x %d rounds against %s\n",
		mode, clients, rounds, target(addr))
	fmt.Printf("  %d queries ranked (%d method evaluations, %d errors) in %v\n",
		queries.Load(), methodsScored.Load(), errs.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.1f queries/sec, %.1f method evaluations/sec\n",
		float64(queries.Load())/elapsed.Seconds(),
		float64(methodsScored.Load())/elapsed.Seconds())
	fmt.Printf("  shed: %d/%d (%.1f%%), truncated: %d/%d (%.1f%%)\n",
		shed.Load(), attempted, rate(shed.Load(), attempted),
		truncated.Load(), queries.Load(), rate(truncated.Load(), queries.Load()))
	fmt.Printf("  batch latency: p50=%v p95=%v p99=%v max=%v (n=%d)\n",
		percentile(all, 0.50).Round(time.Microsecond),
		percentile(all, 0.95).Round(time.Microsecond),
		percentile(all, 0.99).Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond), len(all))
	if mode == "overload" && len(servedAll) > 0 {
		fmt.Printf("  served latency: p50=%v p95=%v p99=%v (n=%d; sheds excluded — the bound shedding buys)\n",
			percentile(servedAll, 0.50).Round(time.Microsecond),
			percentile(servedAll, 0.95).Round(time.Microsecond),
			percentile(servedAll, 0.99).Round(time.Microsecond), len(servedAll))
	}
	if relTrials > 0 {
		fmt.Printf("  simulation: %d trials/query, %.0f trials/sec\n",
			relTrials, float64(queries.Load()*int64(relTrials))/elapsed.Seconds())
	}
	if addr == "" {
		fmt.Printf("  result cache: %+v\n", sys.CacheStats())
		fmt.Printf("  plan cache:   %+v\n", sys.PlanStats())
		if es := sys.EngineStats(); es.Capacity > 0 {
			fmt.Printf("  engine:       %+v\n", es)
		}
	}
}

// runChurn fires the mixed read/write workload at a fresh live system
// under the given invalidation mode and reports read latency and cache
// effectiveness. Each client interleaves ranking reads with
// probability-revision deltas (seeded, so the scoped and version-nuke
// passes see the identical operation sequence); the cache hit rates of
// the two passes are the study's headline numbers.
func runChurn(name string, inv biorank.InvalidationMode, clients, rounds, trials int, seed uint64, writeRate float64) {
	sys, err := biorank.NewDemoSystem(seed)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ConfigureEngine(biorank.EngineConfig{Invalidation: inv}); err != nil {
		log.Fatal(err)
	}
	if err := sys.EnableLive(); err != nil {
		log.Fatal(err)
	}
	proteins := sys.Proteins()
	// No Reduce: the churn drill measures the compiled-plan path, where a
	// probability-only delta patches the cached plan instead of
	// recompiling (visible as plan-cache patches below).
	opts := biorank.Options{Trials: trials, Seed: seed}

	var reads, writes, errs atomic.Int64
	latencies := make([][]time.Duration, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*1e6 + int64(client)))
			lats := make([]time.Duration, 0, rounds)
			for round := 0; round < rounds; round++ {
				p := proteins[(client*4+round)%len(proteins)]
				if rng.Float64() < writeRate {
					// Probability-only delta on the protein's own record:
					// topology is untouched, so the next query patches its
					// plan instead of recompiling.
					accs := sys.Accessions(p)
					delta := biorank.IngestDelta{Source: "churn", Ops: []biorank.IngestOp{{
						Op:   "set-node-p",
						Node: biorank.IngestRef{Kind: "EntrezProtein", Label: accs[rng.Intn(len(accs))]},
						P:    0.5 + 0.5*rng.Float64(),
					}}}
					if _, err := sys.Ingest(delta); err != nil {
						errs.Add(1)
					} else {
						writes.Add(1)
					}
					continue
				}
				t0 := time.Now()
				res := sys.QueryBatch([]biorank.BatchRequest{{Protein: p, Methods: []biorank.Method{biorank.Reliability}, Options: opts}})
				if res[0].Err != nil {
					errs.Add(1)
					continue
				}
				reads.Add(1)
				lats = append(lats, time.Since(t0))
			}
			latencies[client] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for c := range latencies {
		all = append(all, latencies[c]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	cs := sys.CacheStats()
	ps := sys.PlanStats()
	ls, _ := sys.LiveStats()
	fmt.Printf("loadgen[churn/%s]: %d clients x %d rounds, write rate %.0f%%\n",
		name, clients, rounds, 100*writeRate)
	fmt.Printf("  %d reads, %d writes, %d errors in %v (graph v%d)\n",
		reads.Load(), writes.Load(), errs.Load(), elapsed.Round(time.Millisecond), ls.Version)
	if len(all) > 0 {
		fmt.Printf("  read latency: p50=%v p95=%v p99=%v max=%v\n",
			percentile(all, 0.50).Round(time.Microsecond),
			percentile(all, 0.95).Round(time.Microsecond),
			percentile(all, 0.99).Round(time.Microsecond),
			all[len(all)-1].Round(time.Microsecond))
	}
	fmt.Printf("  result cache: %.1f%% hit rate (%d hits / %d misses), %d invalidated, %d evicted\n",
		rate(cs.Hits, cs.Hits+cs.Misses), cs.Hits, cs.Misses, cs.Invalidations, cs.Evictions)
	fmt.Printf("  plan cache: %d hits, %d misses, %d patched (compiles avoided)\n",
		ps.Hits, ps.Misses, ps.Patches)
}

// runChurnDurability is the churn drill's durability pass: the write
// stream alone, replayed through a durable live store under each fsync
// policy (and once with no WAL at all), with concurrent clients racing
// on the store's write lock exactly as the mixed drill does. The
// headline number is ingest p99 per policy — what an acknowledged
// durable write costs under "always", what the bounded-loss "interval"
// compromise costs, and what the WAL's CPU-side overhead is ("never"
// vs "none").
func runChurnDurability(clients, rounds int, seed uint64) {
	for _, policy := range []string{"none", "never", "interval", "always"} {
		sys, err := biorank.NewDemoSystem(seed)
		if err != nil {
			log.Fatal(err)
		}
		if policy == "none" {
			if err := sys.EnableLive(); err != nil {
				log.Fatal(err)
			}
		} else {
			dir, err := os.MkdirTemp("", "loadgen-wal-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			if _, err := sys.EnableLiveDurable(biorank.DurabilityConfig{Dir: dir, Fsync: policy}); err != nil {
				log.Fatal(err)
			}
		}
		proteins := sys.Proteins()
		var errs atomic.Int64
		latencies := make([][]time.Duration, clients)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed)*1e6 + int64(client)))
				lats := make([]time.Duration, 0, rounds)
				for round := 0; round < rounds; round++ {
					p := proteins[(client*4+round)%len(proteins)]
					accs := sys.Accessions(p)
					delta := biorank.IngestDelta{Source: "churn", Ops: []biorank.IngestOp{{
						Op:   "set-node-p",
						Node: biorank.IngestRef{Kind: "EntrezProtein", Label: accs[rng.Intn(len(accs))]},
						P:    0.5 + 0.5*rng.Float64(),
					}}}
					t0 := time.Now()
					if _, err := sys.Ingest(delta); err != nil {
						errs.Add(1)
						continue
					}
					lats = append(lats, time.Since(t0))
				}
				latencies[client] = lats
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var all []time.Duration
		for c := range latencies {
			all = append(all, latencies[c]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Printf("loadgen[churn-durability/%s]: %d clients x %d writes, %d errors in %v\n",
			policy, clients, rounds, errs.Load(), elapsed.Round(time.Millisecond))
		if len(all) > 0 {
			fmt.Printf("  ingest latency: p50=%v p99=%v max=%v (%.0f writes/sec)\n",
				percentile(all, 0.50).Round(time.Microsecond),
				percentile(all, 0.99).Round(time.Microsecond),
				all[len(all)-1].Round(time.Microsecond),
				float64(len(all))/elapsed.Seconds())
		}
		if ds, ok := sys.DurabilityStats(); ok {
			fmt.Printf("  wal: %d appends, %d syncs, %d rotations, %d checkpoints\n",
				ds.Log.Appends, ds.Log.Syncs, ds.Log.Rotations, ds.Checkpoints)
		}
		sys.Close()
	}
}

// rate is a safe percentage.
func rate(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func target(addr string) string {
	if addr == "" {
		return "in-process engine"
	}
	return addr
}

// httpStats tallies one HTTP batch: served queries, method
// evaluations, hard errors, load-shed requests and truncated rankings.
type httpStats struct {
	ok, methods, errs, shed, truncated int64
}

// httpBatch issues one /query batch against a biorankd instance.
func httpBatch(base string, batch []biorank.BatchRequest, opts biorank.Options, reqTimeout time.Duration) httpStats {
	type wireReq struct {
		Protein   string   `json:"protein"`
		Methods   []string `json:"methods,omitempty"`
		Trials    int      `json:"trials"`
		Seed      uint64   `json:"seed"`
		Reduce    bool     `json:"reduce"`
		Adaptive  bool     `json:"adaptive"`
		TopK      int      `json:"topk,omitempty"`
		Worlds    bool     `json:"worlds,omitempty"`
		Planner   bool     `json:"planner,omitempty"`
		TimeoutMs int      `json:"timeoutMs,omitempty"`
	}
	reqs := make([]wireReq, len(batch))
	for i, b := range batch {
		methods := make([]string, len(b.Methods))
		for j, m := range b.Methods {
			methods[j] = string(m)
		}
		reqs[i] = wireReq{Protein: b.Protein, Methods: methods, Trials: opts.Trials, Seed: opts.Seed, Reduce: opts.Reduce, Adaptive: opts.Adaptive, TopK: opts.TopK, Worlds: opts.Worlds, Planner: opts.Planner, TimeoutMs: int(reqTimeout.Milliseconds())}
	}
	body, err := json.Marshal(map[string]any{"requests": reqs})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return httpStats{errs: int64(len(batch))}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return httpStats{shed: int64(len(batch))}
	}
	var out struct {
		Results []struct {
			Error        string                       `json:"error"`
			Rankings     map[string][]json.RawMessage `json:"rankings"`
			Truncated    bool                         `json:"truncated"`
			RetryAfterMs int64                        `json:"retryAfterMs"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return httpStats{errs: int64(len(batch))}
	}
	var st httpStats
	for _, r := range out.Results {
		if r.Error != "" {
			if r.RetryAfterMs > 0 {
				st.shed++
			} else {
				st.errs++
			}
			continue
		}
		st.ok++
		st.methods += int64(len(r.Rankings))
		if r.Truncated {
			st.truncated++
		}
	}
	return st
}
