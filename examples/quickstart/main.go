// Quickstart: build a small probabilistic entity graph by hand, run an
// exploratory query, and rank the answers with all five semantics.
//
// The graph is Figure 4a of the paper (a serial-parallel graph): two
// paths from the query to the answer share a single uncertain link, so
// reliability (0.5) and propagation (0.75) disagree — propagation counts
// the shared link twice.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"biorank"
)

func main() {
	g := biorank.NewGraph()

	// Records: a queryable protein, two intermediate gene records, and
	// one answer function. Probabilities are the records' correctness.
	protein := g.AddRecord("Protein", "P53", 1.0)
	geneA := g.AddRecord("Gene", "recordA", 1.0)
	geneB := g.AddRecord("Gene", "recordB", 1.0)
	function := g.AddRecord("Function", "GO:0006915", 1.0)

	// Links: the protein-to-gene link is uncertain (0.5); everything
	// downstream is certain. Both evidence paths share that first link.
	shared := g.AddRecord("Match", "blast-hit", 1.0)
	g.AddLink(protein, shared, 0.5)
	g.AddLink(shared, geneA, 1.0)
	g.AddLink(shared, geneB, 1.0)
	g.AddLink(geneA, function, 1.0)
	g.AddLink(geneB, function, 1.0)

	answers, err := g.Explore("P53", "Protein", "Function")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Ranking GO:0006915 under the five semantics of the paper:")
	for _, m := range biorank.Methods() {
		scored, err := answers.Rank(m, biorank.Options{Trials: 200000, Seed: 1, Exact: m == biorank.Reliability})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s r = %.4f\n", m, scored[0].Score)
	}
	fmt.Println()
	fmt.Println("Reliability accounts for the shared 0.5 link (r = 0.5);")
	fmt.Println("propagation treats the two paths as independent (r = 0.75);")
	fmt.Println("the deterministic measures only count structure (2 paths, 2 in-edges).")
}
