package biorank

import (
	"fmt"
	"sync/atomic"
	"time"

	"biorank/internal/graph"
	"biorank/internal/wal"
)

// This file wires the write-ahead log through the facade: a durable live
// system appends every ingest delta to internal/wal before committing it,
// checkpoints the union graph periodically and on demand, and — on the
// next EnableLiveDurable over the same directory — recovers to exactly
// the durable state instead of re-integrating from the sources.

// DurabilityConfig configures the live store's write-ahead log.
type DurabilityConfig struct {
	// Dir is the WAL directory (segments + checkpoints). Required.
	Dir string
	// Fsync is the append fsync policy: "always", "interval" or "never"
	// (wal.ParseSyncPolicy). Empty means "interval".
	Fsync string
	// FsyncInterval is the "interval" policy's period; zero means the
	// WAL default (100ms).
	FsyncInterval time.Duration
	// SegmentBytes overrides the segment rotation threshold; zero means
	// the WAL default (4 MiB).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint automatically after that many
	// ingested deltas (and prunes covered segments). Zero disables
	// automatic checkpoints; Checkpoint can still be called explicitly.
	CheckpointEvery int
	// FS overrides the filesystem — the chaos package injects faults
	// through this. Nil means the real filesystem.
	FS wal.FS
}

// durable is the per-liveState durability handle.
type durable struct {
	log             *wal.Log
	dir             string
	fs              wal.FS
	checkpointEvery uint64

	checkpoints       atomic.Uint64
	lastCheckpointSeq atomic.Uint64
	checkpointErrs    atomic.Uint64
	recovery          wal.RecoveryStats
	recovered         bool
}

// DurabilityStats reports the durable live store's WAL, checkpoint and
// recovery counters, for /stats.
type DurabilityStats struct {
	Dir               string            `json:"dir"`
	Log               wal.LogStats      `json:"log"`
	Checkpoints       uint64            `json:"checkpoints"`
	LastCheckpointSeq uint64            `json:"last_checkpoint_seq"`
	CheckpointErrs    uint64            `json:"checkpoint_errors"`
	Recovered         bool              `json:"recovered"`
	Recovery          wal.RecoveryStats `json:"recovery"`
}

// EnableLiveDurable is EnableLive with a write-ahead log: if cfg.Dir
// already holds durable state, the union graph is recovered from the
// newest checkpoint plus the WAL suffix (no re-integration — the
// recovered graph IS the state, including every ingested delta); on a
// fresh directory the sources are integrated once and checkpointed as
// the recovery base. Either way, every subsequent Ingest delta is
// appended to the log before it commits.
//
// The returned stats describe what recovery did; Recovered is false on a
// fresh bootstrap. The same sequencing rule as EnableLive applies: the
// call must precede the engine's lazy start.
//
// The keyword→accession index is rebuilt from this system's mediator, so
// the directory must belong to the same world (same scenario and seed);
// recovering someone else's WAL into a mismatched world fails on the
// next delta whose references don't resolve, not here.
func (s *System) EnableLiveDurable(cfg DurabilityConfig) (DurabilityStats, error) {
	if cfg.Dir == "" {
		return DurabilityStats{}, fmt.Errorf("biorank: durability requires a directory")
	}
	if cfg.Fsync == "" {
		cfg.Fsync = "interval"
	}
	policy, err := wal.ParseSyncPolicy(cfg.Fsync)
	if err != nil {
		return DurabilityStats{}, err
	}

	s.engMu.Lock()
	defer s.engMu.Unlock()
	if s.engStarted {
		return DurabilityStats{}, fmt.Errorf("biorank: engine already started; EnableLiveDurable must precede the first QueryBatch")
	}
	if s.live.Load() != nil {
		return DurabilityStats{}, fmt.Errorf("biorank: system is already live")
	}

	dur := &durable{
		dir:             cfg.Dir,
		fs:              cfg.FS,
		checkpointEvery: uint64(cfg.CheckpointEvery),
	}

	rec, err := wal.Recover(cfg.Dir, cfg.FS)
	if err != nil {
		return DurabilityStats{}, fmt.Errorf("biorank: recover %s: %w", cfg.Dir, err)
	}
	var store *graph.Store
	if rec != nil {
		store = graph.NewStoreAt(rec.Graph, rec.Seq)
		dur.recovery = rec.Stats
		dur.recovered = true
		dur.lastCheckpointSeq.Store(rec.Stats.CheckpointSeq)
	} else {
		g, err := s.med.IntegrateAll(s.Proteins())
		if err != nil {
			return DurabilityStats{}, err
		}
		store = graph.NewStore(g)
		cp, err := wal.CaptureCheckpoint(g, 0)
		if err != nil {
			return DurabilityStats{}, err
		}
		if _, err := wal.WriteCheckpoint(cfg.FS, cfg.Dir, cp); err != nil {
			return DurabilityStats{}, fmt.Errorf("biorank: initial checkpoint: %w", err)
		}
		dur.checkpoints.Add(1)
	}

	log, err := wal.OpenLog(cfg.Dir, wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Sync:         policy,
		SyncEvery:    cfg.FsyncInterval,
		FS:           cfg.FS,
	})
	if err != nil {
		return DurabilityStats{}, fmt.Errorf("biorank: open wal: %w", err)
	}
	store.SetDurability(log)
	dur.log = log

	ls := &liveState{
		store:             store,
		keywordAccessions: make(map[string]map[string]bool),
		accessionKeywords: make(map[string][]string),
		dur:               dur,
	}
	s.indexKeywords(ls)
	s.live.Store(ls)
	return s.durabilityStats(ls), nil
}

// indexKeywords (re)builds the keyword↔accession index from the
// mediator — the mapping scoped invalidation runs on.
func (s *System) indexKeywords(ls *liveState) {
	for _, kw := range s.Proteins() {
		accs := s.med.Accessions(kw)
		if len(accs) == 0 {
			continue
		}
		set := make(map[string]bool, len(accs))
		for _, a := range accs {
			set[a] = true
			ls.accessionKeywords[a] = append(ls.accessionKeywords[a], kw)
		}
		ls.keywordAccessions[kw] = set
	}
}

// LiveDurable reports whether the system is live with a write-ahead log.
func (s *System) LiveDurable() bool {
	ls := s.live.Load()
	return ls != nil && ls.dur != nil
}

// Checkpoint snapshots the live graph at its current WAL position,
// publishes it atomically, and prunes log segments the snapshot covers.
// The graph is serialized under the store's read lock, so the snapshot
// is consistent with the sequence number it carries; concurrent ingests
// simply wait. Returns the checkpointed sequence number.
func (s *System) Checkpoint() (uint64, error) {
	ls := s.live.Load()
	if ls == nil {
		return 0, ErrNotLive
	}
	if ls.dur == nil {
		return 0, fmt.Errorf("biorank: system is live but not durable")
	}
	var (
		cp  *wal.Checkpoint
		err error
	)
	ls.store.ViewAt(func(g *graph.Graph, seq uint64) {
		cp, err = wal.CaptureCheckpoint(g, seq)
	})
	if err != nil {
		ls.dur.checkpointErrs.Add(1)
		return 0, err
	}
	if _, err := wal.WriteCheckpoint(ls.dur.fs, ls.dur.dir, cp); err != nil {
		ls.dur.checkpointErrs.Add(1)
		return 0, err
	}
	ls.dur.checkpoints.Add(1)
	ls.dur.lastCheckpointSeq.Store(cp.Seq)
	if _, err := ls.dur.log.PruneBefore(cp.Seq + 1); err != nil {
		// The checkpoint itself is published; stale segments are a
		// hygiene problem, not a correctness one.
		ls.dur.checkpointErrs.Add(1)
	}
	return cp.Seq, nil
}

// maybeCheckpoint runs the automatic checkpoint policy after an ingest:
// once CheckpointEvery deltas have accumulated past the last checkpoint,
// take a new one. Errors are counted, not returned — the ingest that
// triggered the checkpoint already succeeded durably via the WAL.
func (s *System) maybeCheckpoint(ls *liveState) {
	dur := ls.dur
	if dur == nil || dur.checkpointEvery == 0 {
		return
	}
	var seq uint64
	ls.store.ViewAt(func(_ *graph.Graph, n uint64) { seq = n })
	if seq >= dur.lastCheckpointSeq.Load()+dur.checkpointEvery {
		s.Checkpoint() //nolint:errcheck // counted in checkpointErrs
	}
}

// DurabilityStats snapshots the WAL/checkpoint/recovery counters; ok is
// false when the system is not live-durable.
func (s *System) DurabilityStats() (DurabilityStats, bool) {
	ls := s.live.Load()
	if ls == nil || ls.dur == nil {
		return DurabilityStats{}, false
	}
	return s.durabilityStats(ls), true
}

func (s *System) durabilityStats(ls *liveState) DurabilityStats {
	dur := ls.dur
	return DurabilityStats{
		Dir:               dur.dir,
		Log:               dur.log.Stats(),
		Checkpoints:       dur.checkpoints.Load(),
		LastCheckpointSeq: dur.lastCheckpointSeq.Load(),
		CheckpointErrs:    dur.checkpointErrs.Load(),
		Recovered:         dur.recovered,
		Recovery:          dur.recovery,
	}
}

// SyncWAL forces an fsync of the live WAL regardless of policy — the
// drain path calls it so a clean shutdown loses nothing even under
// -fsync never.
func (s *System) SyncWAL() error {
	ls := s.live.Load()
	if ls == nil || ls.dur == nil {
		return nil
	}
	return ls.dur.log.Sync()
}

// closeDurability syncs and closes the WAL; called by System.Close.
func (s *System) closeDurability() {
	ls := s.live.Load()
	if ls == nil || ls.dur == nil {
		return
	}
	ls.dur.log.Close() //nolint:errcheck // shutdown path
}
